"""Brute-force product-form solution over the full state space.

This module is the library's *golden reference*: it evaluates the
paper's equations 2-3 literally, by enumerating every state of
``Gamma(N)`` and summing.  Everything else in the library (Algorithm 1,
Algorithm 2, the CTMC solver, the simulator) is tested against it.

The stationary distribution (paper eq. 2) is

    ``pi(k) = Psi(k) * prod_r Phi_r(k_r) / G(N)``

with

    ``Psi(k)   = P(N1, k.A) * P(N2, k.A)``    (falling factorials)
    ``Phi_r(k) = prod_{l=1..k} lambda_r(l-1) / (l mu_r)``

and ``G(N)`` the normalizing sum.  All sums are carried out in the
log domain with :func:`math.fsum`-grade accumulation so the reference
stays accurate far beyond where naive factorials overflow.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .state import SwitchDimensions, iter_states, log_permutation, permutation
from .traffic import TrafficClass

__all__ = [
    "log_psi",
    "log_phi",
    "log_state_weight",
    "log_normalization",
    "StateDistribution",
    "solve_brute_force",
]


def log_psi(dims: SwitchDimensions, used: int) -> float:
    """``log Psi`` for a state occupying ``used`` pairs.

    ``Psi(k) = N1!/(N1-k.A)! * N2!/(N2-k.A)!``; returns ``-inf`` when
    the state does not fit (``used > capacity``), which makes the
    corresponding weight vanish.
    """
    return log_permutation(dims.n1, used) + log_permutation(dims.n2, used)


def log_phi(cls: TrafficClass, k: int) -> float:
    """``log Phi_r(k) = sum_{l=1..k} log( lambda_r(l-1) / (l mu_r) )``.

    Returns ``-inf`` when any factor is zero (a Bernoulli class whose
    source pool is exhausted), so that impossible states get weight 0.
    """
    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k}")
    total = 0.0
    for level in range(1, k + 1):
        rate = cls.rate(level - 1)
        if rate <= 0.0:
            return -math.inf
        total += math.log(rate) - math.log(level * cls.mu)
    return total


def log_state_weight(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    state: Sequence[int],
) -> float:
    """Log of the unnormalized weight ``Psi(k) prod_r Phi_r(k_r)``."""
    used = sum(k * c.a for k, c in zip(state, classes))
    weight = log_psi(dims, used)
    for k, cls in zip(state, classes):
        weight += log_phi(cls, k)
    return weight


def _logsumexp(values: list[float]) -> float:
    """Accurate log-sum-exp of a list of (possibly -inf) log values."""
    top = max(values, default=-math.inf)
    if top == -math.inf:
        return -math.inf
    return top + math.log(math.fsum(math.exp(v - top) for v in values))


def log_normalization(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> float:
    """``log G(N)`` by direct enumeration of ``Gamma(N)`` (paper eq. 3)."""
    for cls in classes:
        if cls.a <= dims.capacity:
            cls.validate_for(dims.n1, dims.n2)
    logs = [
        log_state_weight(dims, classes, state)
        for state in iter_states(dims, classes)
    ]
    return _logsumexp(logs)


@dataclass(frozen=True)
class StateDistribution:
    """The full stationary distribution ``pi`` over ``Gamma(N)``.

    Produced by :func:`solve_brute_force`; exposes every performance
    measure as a direct state-space sum so that the fast algorithms can
    be validated term by term.
    """

    dims: SwitchDimensions
    classes: tuple[TrafficClass, ...]
    states: tuple[tuple[int, ...], ...]
    probabilities: tuple[float, ...]
    log_g: float

    def __post_init__(self) -> None:
        if len(self.states) != len(self.probabilities):
            raise ConfigurationError("states/probabilities length mismatch")

    # -- basic accessors ------------------------------------------------

    def probability(self, state: Sequence[int]) -> float:
        """``pi(k)`` for one state (0.0 if the state is infeasible)."""
        target = tuple(state)
        for s, p in zip(self.states, self.probabilities):
            if s == target:
                return p
        return 0.0

    def as_dict(self) -> dict[tuple[int, ...], float]:
        """Mapping state -> probability."""
        return dict(zip(self.states, self.probabilities))

    # -- performance measures (direct definitions) ----------------------

    def concurrency(self, r: int) -> float:
        """``E_r = sum_k k_r pi(k)`` — mean connections of class ``r``."""
        return math.fsum(
            s[r] * p for s, p in zip(self.states, self.probabilities)
        )

    def concurrencies(self) -> list[float]:
        """``E_r`` for every class."""
        return [self.concurrency(r) for r in range(len(self.classes))]

    def concurrency_variance(self, r: int) -> float:
        """``Var(k_r)`` by direct summation."""
        mean = self.concurrency(r)
        second = math.fsum(
            s[r] * s[r] * p for s, p in zip(self.states, self.probabilities)
        )
        return max(0.0, second - mean * mean)

    def concurrency_covariance(self, r: int, s: int) -> float:
        """``Cov(k_r, k_s)`` by direct summation."""
        if r == s:
            return self.concurrency_variance(r)
        cross = math.fsum(
            st[r] * st[s] * p
            for st, p in zip(self.states, self.probabilities)
        )
        return cross - self.concurrency(r) * self.concurrency(s)

    def occupancy_variance(self) -> float:
        """``Var(k.A)`` by direct summation."""
        mean = self.mean_occupancy()
        second = math.fsum(
            sum(k * c.a for k, c in zip(st, self.classes)) ** 2 * p
            for st, p in zip(self.states, self.probabilities)
        )
        return max(0.0, second - mean * mean)

    def mean_occupancy(self) -> float:
        """Mean occupied pairs ``E[k.A]``."""
        return math.fsum(
            sum(k * c.a for k, c in zip(s, self.classes)) * p
            for s, p in zip(self.states, self.probabilities)
        )

    def utilization(self) -> float:
        """Fraction of the limiting dimension occupied, ``E[k.A]/min(N1,N2)``."""
        cap = self.dims.capacity
        if cap == 0:
            return 0.0
        return self.mean_occupancy() / cap

    def occupancy_distribution(self) -> list[float]:
        """``P(k.A = m)`` for ``m = 0..capacity``."""
        cap = self.dims.capacity
        dist = [0.0] * (cap + 1)
        for s, p in zip(self.states, self.probabilities):
            used = sum(k * c.a for k, c in zip(s, self.classes))
            dist[used] += p
        return dist

    def non_blocking_probability(self, r: int) -> float:
        """The paper's ``B_r(N) = G(N - a_r I)/G(N)`` by its *meaning*.

        Equals the probability that a request addressed to a specific
        set of ``a_r`` inputs and ``a_r`` outputs finds all of them
        idle:

        ``B_r = sum_k pi(k) P(N1-k.A, a_r) P(N2-k.A, a_r)
                 / (P(N1, a_r) P(N2, a_r))``.

        Tests verify this equals the normalization-ratio form computed
        by the fast algorithms.
        """
        a = self.classes[r].a
        denom = permutation(self.dims.n1, a) * permutation(self.dims.n2, a)
        if denom == 0:
            return 0.0
        total = math.fsum(
            p
            * permutation(
                self.dims.n1 - sum(k * c.a for k, c in zip(s, self.classes)), a
            )
            * permutation(
                self.dims.n2 - sum(k * c.a for k, c in zip(s, self.classes)), a
            )
            for s, p in zip(self.states, self.probabilities)
        )
        return total / denom

    def blocking_probability(self, r: int) -> float:
        """``1 - B_r(N)`` — what the paper's figures plot."""
        return 1.0 - self.non_blocking_probability(r)

    def time_congestion(self, r: int) -> float:
        """Probability the system cannot fit a class-``r`` connection.

        ``sum of pi(k)`` over states with ``k.A > capacity - a_r``.
        For state-dependent (BPP) arrivals this *differs* from both
        ``1 - B_r`` and the call congestion; the library exposes all
        three.
        """
        a = self.classes[r].a
        cap = self.dims.capacity
        return math.fsum(
            p
            for s, p in zip(self.states, self.probabilities)
            if sum(k * c.a for k, c in zip(s, self.classes)) > cap - a
        )

    def call_acceptance(self, r: int) -> float:
        """Fraction of offered class-``r`` requests that are accepted.

        Offered requests arrive with state-dependent intensity
        ``lambda_r(k_r) P(N1,a) P(N2,a)`` (one stream per ordered
        input/output tuple); a request is accepted iff its named ports
        are idle.  This is what a simulator measures.  Equals ``B_r``
        exactly when the class is Poisson (PASTA).
        """
        cls = self.classes[r]
        a = cls.a
        full = permutation(self.dims.n1, a) * permutation(self.dims.n2, a)
        if full == 0:
            return 0.0
        offered = 0.0
        accepted = 0.0
        for s, p in zip(self.states, self.probabilities):
            rate = cls.rate(s[r])
            used = sum(k * c.a for k, c in zip(s, self.classes))
            offered += p * rate * full
            accepted += (
                p
                * rate
                * permutation(self.dims.n1 - used, a)
                * permutation(self.dims.n2 - used, a)
            )
        if offered == 0.0:
            return 1.0
        return accepted / offered

    def call_congestion(self, r: int) -> float:
        """``1 - call_acceptance(r)`` — blocking seen by arriving calls."""
        return 1.0 - self.call_acceptance(r)

    def throughput(self, r: int) -> float:
        """Connection completion rate of class ``r``: ``mu_r E_r``."""
        return self.classes[r].mu * self.concurrency(r)

    def revenue(self) -> float:
        """Weighted throughput ``W(N) = sum_r w_r E_r(N)`` (paper §4)."""
        return math.fsum(
            c.weight * self.concurrency(r) for r, c in enumerate(self.classes)
        )

    # -- structural checks ----------------------------------------------

    def check_normalized(self, tol: float = 1e-12) -> bool:
        """Probabilities sum to one within ``tol``."""
        return abs(math.fsum(self.probabilities) - 1.0) <= tol

    def detailed_balance_residual(self) -> float:
        """Largest relative violation of detailed balance (should be ~0).

        For every feasible transition ``k -> k + 1_r`` checks
        ``pi(k) q(k, k+1_r) = pi(k+1_r) q(k+1_r, k)`` with
        ``q(k, k+1_r) = lambda_r(k_r) P(N1-k.A, a_r) P(N2-k.A, a_r)``
        and ``q(k+1_r, k) = (k_r + 1) mu_r``.
        """
        index = self.as_dict()
        worst = 0.0
        for s, p in zip(self.states, self.probabilities):
            used = sum(k * c.a for k, c in zip(s, self.classes))
            for r, cls in enumerate(self.classes):
                if used + cls.a > self.dims.capacity:
                    continue
                up = list(s)
                up[r] += 1
                q_up = (
                    cls.rate(s[r])
                    * permutation(self.dims.n1 - used, cls.a)
                    * permutation(self.dims.n2 - used, cls.a)
                )
                p_up = index.get(tuple(up), 0.0)
                q_down = (s[r] + 1) * cls.mu
                flow_up = p * q_up
                flow_down = p_up * q_down
                scale = max(abs(flow_up), abs(flow_down), 1e-300)
                worst = max(worst, abs(flow_up - flow_down) / scale)
        return worst


def solve_brute_force(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> StateDistribution:
    """Enumerate ``Gamma(N)`` and normalize the product-form weights."""
    classes = tuple(classes)
    for cls in classes:
        if cls.a <= dims.capacity:
            cls.validate_for(dims.n1, dims.n2)
    states = tuple(iter_states(dims, classes))
    logs = [log_state_weight(dims, classes, s) for s in states]
    log_g = _logsumexp(logs)
    probs = tuple(
        math.exp(v - log_g) if v > -math.inf else 0.0 for v in logs
    )
    return StateDistribution(
        dims=dims,
        classes=classes,
        states=states,
        probabilities=probs,
        log_g=log_g,
    )
