"""Large-system fixed-point approximation (O(1) in the switch size).

The exact algorithms cost ``O(N1 N2 R)``.  For capacity-planning sweeps
over very large fabrics a constant-time approximation is valuable, and
the crossbar admits a natural one: in a large switch, the probability
that a *specific* input is idle is ``~ (1 - u1)`` with
``u1 = E[k.A]/N1`` (and likewise for outputs), and distinct ports
decorrelate.  A class-``r`` request then succeeds with probability
``(1 - u1)^{a_r} (1 - u2)^{a_r}``, and stationary flow balance per
class closes the system:

    ``mu_r E_r = (alpha_r + beta_r E_r) P(N1,a_r) P(N2,a_r) A_r``
    ``A_r = (1 - u1)^{a_r} (1 - u2)^{a_r}``
    ``u_i = sum_r a_r E_r / N_i``

solved by damped fixed-point iteration.  The approximation is
asymptotically exact as blocking per port vanishes and is validated
against the exact solvers in ``tests/test_asymptotic.py`` and
``benchmarks/bench_asymptotic.py`` (errors of order 1/N at the paper's
operating points).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import ConfigurationError, ConvergenceError
from .state import SwitchDimensions, permutation
from .traffic import TrafficClass

__all__ = ["AsymptoticSolution", "solve_asymptotic"]


@dataclass(frozen=True)
class AsymptoticSolution:
    """Fixed point of the large-system approximation."""

    dims: SwitchDimensions
    classes: tuple[TrafficClass, ...]
    concurrencies: tuple[float, ...]
    iterations: int

    @property
    def input_utilization(self) -> float:
        """``u1 = sum_r a_r E_r / N1``."""
        if self.dims.n1 == 0:
            return 0.0
        return (
            sum(c.a * e for c, e in zip(self.classes, self.concurrencies))
            / self.dims.n1
        )

    @property
    def output_utilization(self) -> float:
        """``u2 = sum_r a_r E_r / N2``."""
        if self.dims.n2 == 0:
            return 0.0
        return (
            sum(c.a * e for c, e in zip(self.classes, self.concurrencies))
            / self.dims.n2
        )

    def concurrency(self, r: int) -> float:
        return self.concurrencies[r]

    def non_blocking(self, r: int) -> float:
        """``B_r ~ (1 - u1)^a (1 - u2)^a`` — the port-idle product."""
        a = self.classes[r].a
        return (
            max(0.0, 1.0 - self.input_utilization) ** a
            * max(0.0, 1.0 - self.output_utilization) ** a
        )

    def blocking(self, r: int) -> float:
        return 1.0 - self.non_blocking(r)

    def revenue(self) -> float:
        """``W = sum_r w_r E_r`` under the approximation."""
        return math.fsum(
            c.weight * e for c, e in zip(self.classes, self.concurrencies)
        )

    def utilization(self) -> float:
        """Fraction of the limiting side in use."""
        cap = self.dims.capacity
        if cap == 0:
            return 0.0
        return (
            sum(c.a * e for c, e in zip(self.classes, self.concurrencies))
            / cap
        )


def solve_asymptotic(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    tol: float = 1e-13,
    max_iter: int = 200,
) -> AsymptoticSolution:
    """Solve the large-system fixed point by bisection.

    Each class's balance concurrency is a non-increasing function of
    the total occupancy ``m = sum_r a_r E_r``, so the scalar map
    ``g(m) = sum_r a_r E_r(m) - m`` is strictly decreasing and has a
    unique root: bisection converges unconditionally, including in deep
    saturation where naive fixed-point iteration limit-cycles.
    """
    classes = tuple(classes)
    if not classes:
        raise ConfigurationError("at least one traffic class is required")
    for cls in classes:
        if cls.a <= dims.capacity:
            cls.validate_for(dims.n1, dims.n2)
    if dims.capacity == 0:
        return AsymptoticSolution(
            dims=dims,
            classes=classes,
            concurrencies=tuple([0.0] * len(classes)),
            iterations=0,
        )

    tuples = [
        permutation(dims.n1, c.a) * permutation(dims.n2, c.a)
        for c in classes
    ]
    caps = [
        dims.capacity / c.a if c.a <= dims.capacity else 0.0
        for c in classes
    ]

    def concurrencies_at(m: float) -> list[float]:
        u1 = min(1.0, m / dims.n1)
        u2 = min(1.0, m / dims.n2)
        out = []
        for r, cls in enumerate(classes):
            if tuples[r] == 0:
                out.append(0.0)
                continue
            acceptance = (1.0 - u1) ** cls.a * (1.0 - u2) ** cls.a
            carried_rate = tuples[r] * acceptance
            denom = cls.mu - cls.beta * carried_rate
            if denom <= 0.0:
                # Pascal feedback exceeds the service capacity at this
                # acceptance level: the class would pin at its cap.
                out.append(caps[r])
            else:
                out.append(min(caps[r], cls.alpha * carried_rate / denom))
        return out

    def excess(m: float) -> float:
        return (
            math.fsum(c.a * e for c, e in zip(classes, concurrencies_at(m)))
            - m
        )

    lo, hi = 0.0, float(dims.capacity)
    if excess(lo) <= 0.0:
        return AsymptoticSolution(
            dims=dims,
            classes=classes,
            concurrencies=tuple(concurrencies_at(0.0)),
            iterations=0,
        )
    iteration = 0
    while hi - lo > tol * max(1.0, float(dims.capacity)):
        iteration += 1
        if iteration > max_iter:
            raise ConvergenceError(
                f"asymptotic bisection did not converge in {max_iter} "
                f"iterations (bracket width {hi - lo:.3g})"
            )
        mid = 0.5 * (lo + hi)
        if excess(mid) > 0.0:
            lo = mid
        else:
            hi = mid
    root = 0.5 * (lo + hi)
    return AsymptoticSolution(
        dims=dims,
        classes=classes,
        concurrencies=tuple(concurrencies_at(root)),
        iterations=iteration,
    )
