"""Performance measures computed from normalization-ratio grids.

Both fast algorithms (Algorithm 1 / :mod:`repro.core.convolution` and
Algorithm 2 / :mod:`repro.core.mva`) reduce the model to the same
intermediate object: the grid of ratios

    ``H_r(n1, n2) = Q((n1, n2) - a_r I) / Q((n1, n2))``

for every class ``r`` and every sub-switch ``(n1, n2) <= (N1, N2)``.
Every measure in the paper is a function of these ratios:

* non-blocking probability (paper eq. 4 / Algorithm 1 Step 3):
  ``B_r(N) = H_r(N) / (P(N1, a_r) P(N2, a_r))``;
* concurrency (Section 3): ``E_r(N) = rho_r H_r(N)`` for Poisson
  classes and ``E_r(N) = H_r(N) (rho_r + (beta_r/mu_r) E_r(N - a_r I))``
  for BPP classes (a recursion down the diagonal of the grid);
* revenue / weighted throughput (Section 4):
  ``W(N) = sum_r w_r E_r(N)``.

This module holds :class:`PerformanceSolution`, the shared result type.

.. note::
   The paper's Section 3 prints binomial-coefficient prefactors for
   ``E_r``; the form consistent with the model's ``Psi`` function uses
   falling factorials ``P(n, a)`` instead (they agree for ``a_r = 1``,
   which covers all of the paper's numeric examples).  See DESIGN.md
   §2; the test suite proves the permutation form against brute-force
   state sums for ``a_r > 1``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from .state import SwitchDimensions, permutation
from .traffic import TrafficClass

__all__ = ["PerformanceSolution"]


@dataclass
class PerformanceSolution:
    """Solved crossbar model: measure queries over all sub-dimensions.

    Parameters
    ----------
    dims:
        The switch the model was solved for.
    classes:
        The traffic mix.
    h:
        One ``(N1+1) x (N2+1)`` array per class;
        ``h[r][m1, m2] = Q((m1,m2) - a_r I)/Q((m1,m2))`` and 0 where the
        class does not fit.
    log_q:
        Optional grid of ``log Q(m1, m2)`` (only Algorithm 1 in log
        mode produces it); enables :meth:`log_g`.
    method:
        Provenance label (``"convolution"``, ``"mva"``, ...).
    """

    dims: SwitchDimensions
    classes: tuple[TrafficClass, ...]
    h: tuple[np.ndarray, ...]
    log_q: np.ndarray | None = None
    method: str = ""
    #: Precomputed concurrency grids for smooth (beta < 0) classes.
    #: The diagonal E recursion is numerically unstable for them (its
    #: bracket ``rho + b E`` cancels), so solvers that can evaluate the
    #: stable positive sum store the result here; ``concurrency`` uses
    #: it when available.
    e_smooth: dict[int, np.ndarray] = field(default_factory=dict)
    _concurrency_cache: dict[tuple[int, int, int], float] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if len(self.h) != len(self.classes):
            raise ConfigurationError(
                f"{len(self.h)} H grids for {len(self.classes)} classes"
            )
        shape = (self.dims.n1 + 1, self.dims.n2 + 1)
        for grid in self.h:
            if grid.shape != shape:
                raise ConfigurationError(
                    f"H grid shape {grid.shape} != expected {shape}"
                )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _resolve(self, at: SwitchDimensions | None) -> SwitchDimensions:
        if at is None:
            return self.dims
        if not self.dims.contains(at):
            raise ConfigurationError(
                f"requested dims {at} exceed solved grid {self.dims}"
            )
        return at

    def h_ratio(self, r: int, at: SwitchDimensions | None = None) -> float:
        """``Q(at - a_r I)/Q(at)`` straight from the grid."""
        at = self._resolve(at)
        return float(self.h[r][at.n1, at.n2])

    # ------------------------------------------------------------------
    # Paper measures
    # ------------------------------------------------------------------

    def non_blocking(self, r: int, at: SwitchDimensions | None = None) -> float:
        """``B_r = G(at - a_r I)/G(at)`` — paper eq. 4.

        The probability that a class-``r`` request addressed to a
        specific set of ``a_r`` inputs and ``a_r`` outputs finds all of
        them idle.  Zero when the class cannot fit at all.
        """
        at = self._resolve(at)
        a = self.classes[r].a
        denom = permutation(at.n1, a) * permutation(at.n2, a)
        if denom == 0:
            return 0.0
        return self.h_ratio(r, at) / denom

    def blocking(self, r: int, at: SwitchDimensions | None = None) -> float:
        """``1 - B_r`` — what the paper's figures plot."""
        return 1.0 - self.non_blocking(r, at)

    def concurrency(self, r: int, at: SwitchDimensions | None = None) -> float:
        """Mean concurrent class-``r`` connections ``E_r`` (Section 3).

        Poisson classes: ``E_r = rho_r H_r(at)``.
        BPP classes: ``E_r(at) = H_r(at) (rho_r + b_r E_r(at - a_r I))``
        evaluated by recursion down the grid diagonal
        (``E_r(0) = 0``).
        """
        at = self._resolve(at)
        cls = self.classes[r]
        if cls.is_poisson:
            return cls.rho * self.h_ratio(r, at)
        grid = self.e_smooth.get(r)
        if grid is not None:
            value = float(grid[at.n1, at.n2])
            if not math.isnan(value):
                return value
        return self._bursty_concurrency(r, at.n1, at.n2)

    def _bursty_concurrency(self, r: int, m1: int, m2: int) -> float:
        cls = self.classes[r]
        if min(m1, m2) < cls.a:
            return 0.0
        key = (r, m1, m2)
        cached = self._concurrency_cache.get(key)
        if cached is not None:
            return cached
        inner = self._bursty_concurrency(r, m1 - cls.a, m2 - cls.a)
        value = float(self.h[r][m1, m2]) * (cls.rho + cls.b * inner)
        self._concurrency_cache[key] = value
        return value

    def concurrencies(self, at: SwitchDimensions | None = None) -> list[float]:
        """``E_r`` for every class."""
        return [self.concurrency(r, at) for r in range(len(self.classes))]

    def throughput(self, r: int, at: SwitchDimensions | None = None) -> float:
        """Completion rate of class ``r``: ``mu_r E_r``."""
        return self.classes[r].mu * self.concurrency(r, at)

    def total_throughput(self, at: SwitchDimensions | None = None) -> float:
        """``sum_r mu_r E_r`` — the revenue with unit gamma-weights."""
        return math.fsum(
            self.throughput(r, at) for r in range(len(self.classes))
        )

    def revenue(self, at: SwitchDimensions | None = None) -> float:
        """Weighted throughput ``W = sum_r w_r E_r`` (paper Section 4)."""
        return math.fsum(
            cls.weight * self.concurrency(r, at)
            for r, cls in enumerate(self.classes)
        )

    def mean_occupancy(self, at: SwitchDimensions | None = None) -> float:
        """Mean occupied input/output pairs ``E[k.A] = sum_r a_r E_r``."""
        return math.fsum(
            cls.a * self.concurrency(r, at)
            for r, cls in enumerate(self.classes)
        )

    def utilization(self, at: SwitchDimensions | None = None) -> float:
        """``E[k.A] / min(N1, N2)`` — fraction of the limiting side in use."""
        at = self._resolve(at)
        if at.capacity == 0:
            return 0.0
        return self.mean_occupancy(at) / at.capacity

    def call_acceptance(self, r: int, at: SwitchDimensions | None = None) -> float:
        """Fraction of *offered* class-``r`` requests accepted.

        For Poisson classes this equals ``B_r`` (PASTA).  For BPP
        classes offered requests are modulated by the state, and the
        stationary flow balance gives the closed form

            ``mu_r E_r / (P(N1,a) P(N2,a) (alpha_r + beta_r E_r))``

        which is what a discrete-event simulator measures.
        """
        at = self._resolve(at)
        cls = self.classes[r]
        if cls.is_poisson:
            return self.non_blocking(r, at)
        full = permutation(at.n1, cls.a) * permutation(at.n2, cls.a)
        if full == 0:
            return 0.0
        e = self.concurrency(r, at)
        offered = cls.alpha + cls.beta * e
        if offered <= 0.0:
            return 1.0
        return cls.mu * e / (full * offered)

    def call_congestion(self, r: int, at: SwitchDimensions | None = None) -> float:
        """``1 - call_acceptance`` — blocking experienced by arrivals."""
        return 1.0 - self.call_acceptance(r, at)

    # ------------------------------------------------------------------
    # Normalization access
    # ------------------------------------------------------------------

    def log_g(self, at: SwitchDimensions | None = None) -> float:
        """``log G(at)`` (requires the solver to have kept ``log Q``)."""
        if self.log_q is None:
            raise ConfigurationError(
                f"log G not available from method '{self.method}' "
                "(only Algorithm 1 in log mode records it)"
            )
        at = self._resolve(at)
        return (
            float(self.log_q[at.n1, at.n2])
            + math.lgamma(at.n1 + 1)
            + math.lgamma(at.n2 + 1)
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Multi-line human-readable report of all per-class measures."""
        lines = [
            f"Crossbar {self.dims} ({self.method or 'solved'}), "
            f"{len(self.classes)} classes:"
        ]
        for r, cls in enumerate(self.classes):
            lines.append(
                f"  [{r}] {cls.name or cls.kind:>10s}  a={cls.a}  "
                f"B={self.blocking(r):.6g}  E={self.concurrency(r):.6g}  "
                f"X={self.throughput(r):.6g}"
            )
        lines.append(
            f"  utilization={self.utilization():.6g}  "
            f"W={self.revenue():.6g}"
        )
        return "\n".join(lines)
