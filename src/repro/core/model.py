"""High-level facade: configure a crossbar and solve it.

:class:`CrossbarModel` bundles the switch dimensions and traffic mix
and dispatches to any of the library's solution methods:

======================  =====================================================
``method``              implementation
======================  =====================================================
``"convolution"``       Algorithm 1 (paper §5) in log domain — the default
``"convolution-scaled"``Algorithm 1 with §6 dynamic scaling (mantissa/exp)
``"convolution-float"`` Algorithm 1 unscaled (raises when it over/underflows)
``"mva"``               Algorithm 2 (paper §5.1), ratio domain
``"exact"``             Algorithm 1 in exact rational arithmetic
``"brute-force"``       direct summation over the state space (eq. 2-3)
======================  =====================================================

Example
-------
>>> from repro import CrossbarModel, TrafficClass
>>> model = CrossbarModel.square(
...     16,
...     [TrafficClass.poisson(0.02, name="data"),
...      TrafficClass.from_moments(0.5, peakedness=2.0, name="video")],
... )
>>> solution = model.solve()
>>> round(solution.blocking(0), 6) >= 0.0
True
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import ConfigurationError
from ..methods import SolveMethod
from .measures import PerformanceSolution
from .productform import StateDistribution, solve_brute_force
from .state import SwitchDimensions, state_space_size
from .traffic import TrafficClass

__all__ = ["CrossbarModel", "solve_brute_force_solution"]

#: Methods accepted by :meth:`CrossbarModel.solve` (kept for backward
#: compatibility; the canonical list is :class:`repro.SolveMethod`).
METHODS = (
    SolveMethod.CONVOLUTION.value,
    SolveMethod.CONVOLUTION_SCALED.value,
    SolveMethod.CONVOLUTION_FLOAT.value,
    SolveMethod.CONVOLUTION_NUMPY.value,
    SolveMethod.CONVOLUTION_SCALED_NUMPY.value,
    SolveMethod.CONVOLUTION_FLOAT_NUMPY.value,
    SolveMethod.MVA.value,
    SolveMethod.MVA_NUMPY.value,
    SolveMethod.EXACT.value,
    SolveMethod.BRUTE_FORCE.value,
)


@dataclass(frozen=True)
class CrossbarModel:
    """An ``N1 x N2`` asynchronous crossbar with a fixed traffic mix."""

    dims: SwitchDimensions
    classes: tuple[TrafficClass, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ConfigurationError(
                "a crossbar model needs at least one traffic class"
            )
        for cls in self.classes:
            if cls.a <= self.dims.capacity:
                cls.validate_for(self.dims.n1, self.dims.n2)

    @classmethod
    def create(
        cls, n1: int, n2: int, classes: Sequence[TrafficClass]
    ) -> "CrossbarModel":
        """Build from plain integers."""
        return cls(SwitchDimensions(n1, n2), tuple(classes))

    @classmethod
    def square(
        cls, n: int, classes: Sequence[TrafficClass]
    ) -> "CrossbarModel":
        """An ``n x n`` switch (the paper's standard configuration)."""
        return cls(SwitchDimensions.square(n), tuple(classes))

    # ------------------------------------------------------------------

    @property
    def state_space_size(self) -> int:
        """Number of states in ``Gamma(N)``."""
        return state_space_size(self.dims, self.classes)

    def solve(
        self, method: SolveMethod | str = SolveMethod.CONVOLUTION
    ) -> PerformanceSolution:
        """Solve for all performance measures.

        See the module docstring for the method table.  All methods
        return the same :class:`PerformanceSolution` interface and agree
        to within floating-point error (the test suite asserts this).

        This is now a thin delegate over the process-wide batched
        engine (:mod:`repro.engine`): repeated solves of an equivalent
        model are served from its memo.
        """
        from ..api import SolveRequest
        from ..engine import get_default_engine

        request = SolveRequest(self.dims, self.classes, method)
        return get_default_engine().solution_for(request)

    def distribution(self) -> StateDistribution:
        """The full stationary distribution (brute-force enumeration).

        Only practical for moderate state spaces; gives access to
        measures the ratio algorithms cannot express (e.g. time
        congestion, the occupancy histogram).
        """
        return solve_brute_force(self.dims, self.classes)

    def with_class(self, new_class: TrafficClass) -> "CrossbarModel":
        """A copy of this model with one more traffic class."""
        return CrossbarModel(self.dims, self.classes + (new_class,))

    def moment_report(self) -> dict:
        """Means, variances, carried peakedness and occupancy moments.

        Convenience wrapper over :mod:`repro.core.moments`; returns a
        JSON-friendly dict with one entry per class plus occupancy
        statistics.
        """
        from .moments import (
            carried_peakedness,
            concurrency_variance,
            factorial_moment,
            occupancy_pmf,
            occupancy_variance,
        )

        per_class = []
        for r, cls in enumerate(self.classes):
            mean = factorial_moment(self.dims, self.classes, r, 1)
            per_class.append(
                {
                    "name": cls.name or f"class-{r}",
                    "mean": mean,
                    "variance": concurrency_variance(
                        self.dims, self.classes, r
                    ),
                    "carried_peakedness": carried_peakedness(
                        self.dims, self.classes, r
                    ),
                    "offered_peakedness": cls.peakedness,
                }
            )
        pmf = occupancy_pmf(self.dims, self.classes)
        return {
            "classes": per_class,
            "occupancy_mean": sum(m * p for m, p in enumerate(pmf)),
            "occupancy_variance": occupancy_variance(
                self.dims, self.classes
            ),
            "occupancy_pmf": pmf,
        }

    def scaled_to(self, n: int) -> "CrossbarModel":
        """Same aggregate ("tilde") traffic on an ``n x n`` switch.

        Re-derives the per-pair parameters so that ``alpha~`` and
        ``beta~`` stay constant — exactly how the paper sweeps system
        size in Figures 1-4.
        """
        new_classes = []
        for cls in self.classes:
            new_classes.append(
                TrafficClass.from_aggregate(
                    cls.aggregate_alpha(self.dims.n2),
                    cls.aggregate_beta(self.dims.n2),
                    n2=n,
                    mu=cls.mu,
                    a=cls.a,
                    weight=cls.weight,
                    name=cls.name,
                )
            )
        return CrossbarModel(SwitchDimensions.square(n), tuple(new_classes))


def solve_brute_force_solution(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> PerformanceSolution:
    """Brute-force state-space summation as the common solution type.

    The H grids are only filled at the full dimensions (sub-dimension
    queries would need one enumeration each), which is enough for the
    standard measures at ``N``; Poisson concurrency reads H directly
    and bursty concurrency recurses into sub-grids, so those cells are
    filled by solving reduced systems when a bursty class is present.
    """
    import numpy as np

    from .state import permutation

    classes = tuple(classes)
    dist = solve_brute_force(dims, classes)
    h_grids = []
    needs_diagonal = any(c.is_bursty for c in classes)
    for r, cls in enumerate(classes):
        grid = np.zeros((dims.n1 + 1, dims.n2 + 1))
        a = cls.a
        points = [(dims.n1, dims.n2)]
        if needs_diagonal:
            m1, m2 = dims.n1 - a, dims.n2 - a
            while min(m1, m2) >= a:
                points.append((m1, m2))
                m1 -= a
                m2 -= a
        for m1, m2 in points:
            sub = SwitchDimensions(m1, m2)
            sub_dist = (
                dist if (m1, m2) == (dims.n1, dims.n2)
                else solve_brute_force(sub, classes)
            )
            grid[m1, m2] = sub_dist.non_blocking_probability(r) * (
                permutation(m1, a) * permutation(m2, a)
            )
        h_grids.append(grid)
    return PerformanceSolution(
        dims=dims,
        classes=classes,
        h=tuple(h_grids),
        log_q=None,
        method="brute-force",
    )


def _solution_from_distribution(
    model: CrossbarModel, dist: StateDistribution
) -> PerformanceSolution:
    """Backward-compatible wrapper over :func:`solve_brute_force_solution`."""
    del dist  # recomputed; kept only for signature compatibility
    return solve_brute_force_solution(model.dims, model.classes)
