"""High-level facade: configure a crossbar and solve it.

:class:`CrossbarModel` bundles the switch dimensions and traffic mix
and dispatches to any of the library's solution methods:

======================  =====================================================
``method``              implementation
======================  =====================================================
``"convolution"``       Algorithm 1 (paper §5) in log domain — the default
``"convolution-scaled"``Algorithm 1 with §6 dynamic scaling (mantissa/exp)
``"convolution-float"`` Algorithm 1 unscaled (raises when it over/underflows)
``"mva"``               Algorithm 2 (paper §5.1), ratio domain
``"exact"``             Algorithm 1 in exact rational arithmetic
``"brute-force"``       direct summation over the state space (eq. 2-3)
======================  =====================================================

Example
-------
>>> from repro import CrossbarModel, TrafficClass
>>> model = CrossbarModel.square(
...     16,
...     [TrafficClass.poisson(0.02, name="data"),
...      TrafficClass.from_moments(0.5, peakedness=2.0, name="video")],
... )
>>> solution = model.solve()
>>> round(solution.blocking(0), 6) >= 0.0
True
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .convolution import solve_convolution
from .exact import solve_exact
from .measures import PerformanceSolution
from .mva import solve_mva
from .productform import StateDistribution, solve_brute_force
from .state import SwitchDimensions, state_space_size
from .traffic import TrafficClass

__all__ = ["CrossbarModel"]

#: Methods accepted by :meth:`CrossbarModel.solve`.
METHODS = (
    "convolution",
    "convolution-scaled",
    "convolution-float",
    "mva",
    "exact",
    "brute-force",
)


@dataclass(frozen=True)
class CrossbarModel:
    """An ``N1 x N2`` asynchronous crossbar with a fixed traffic mix."""

    dims: SwitchDimensions
    classes: tuple[TrafficClass, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ConfigurationError(
                "a crossbar model needs at least one traffic class"
            )
        for cls in self.classes:
            if cls.a <= self.dims.capacity:
                cls.validate_for(self.dims.n1, self.dims.n2)

    @classmethod
    def create(
        cls, n1: int, n2: int, classes: Sequence[TrafficClass]
    ) -> "CrossbarModel":
        """Build from plain integers."""
        return cls(SwitchDimensions(n1, n2), tuple(classes))

    @classmethod
    def square(
        cls, n: int, classes: Sequence[TrafficClass]
    ) -> "CrossbarModel":
        """An ``n x n`` switch (the paper's standard configuration)."""
        return cls(SwitchDimensions.square(n), tuple(classes))

    # ------------------------------------------------------------------

    @property
    def state_space_size(self) -> int:
        """Number of states in ``Gamma(N)``."""
        return state_space_size(self.dims, self.classes)

    def solve(self, method: str = "convolution") -> PerformanceSolution:
        """Solve for all performance measures.

        See the module docstring for the method table.  All methods
        return the same :class:`PerformanceSolution` interface and agree
        to within floating-point error (the test suite asserts this).
        """
        if method == "convolution":
            return solve_convolution(self.dims, self.classes, mode="log")
        if method == "convolution-scaled":
            return solve_convolution(self.dims, self.classes, mode="scaled")
        if method == "convolution-float":
            return solve_convolution(self.dims, self.classes, mode="float")
        if method == "mva":
            return solve_mva(self.dims, self.classes)
        if method == "exact":
            return solve_exact(self.dims, self.classes)
        if method == "brute-force":
            dist = self.distribution()
            # Re-expose as the common interface via the ratio identity.
            return _solution_from_distribution(self, dist)
        raise ConfigurationError(
            f"unknown method {method!r}; expected one of {METHODS}"
        )

    def distribution(self) -> StateDistribution:
        """The full stationary distribution (brute-force enumeration).

        Only practical for moderate state spaces; gives access to
        measures the ratio algorithms cannot express (e.g. time
        congestion, the occupancy histogram).
        """
        return solve_brute_force(self.dims, self.classes)

    def with_class(self, new_class: TrafficClass) -> "CrossbarModel":
        """A copy of this model with one more traffic class."""
        return CrossbarModel(self.dims, self.classes + (new_class,))

    def moment_report(self) -> dict:
        """Means, variances, carried peakedness and occupancy moments.

        Convenience wrapper over :mod:`repro.core.moments`; returns a
        JSON-friendly dict with one entry per class plus occupancy
        statistics.
        """
        from .moments import (
            carried_peakedness,
            concurrency_variance,
            factorial_moment,
            occupancy_pmf,
            occupancy_variance,
        )

        per_class = []
        for r, cls in enumerate(self.classes):
            mean = factorial_moment(self.dims, self.classes, r, 1)
            per_class.append(
                {
                    "name": cls.name or f"class-{r}",
                    "mean": mean,
                    "variance": concurrency_variance(
                        self.dims, self.classes, r
                    ),
                    "carried_peakedness": carried_peakedness(
                        self.dims, self.classes, r
                    ),
                    "offered_peakedness": cls.peakedness,
                }
            )
        pmf = occupancy_pmf(self.dims, self.classes)
        return {
            "classes": per_class,
            "occupancy_mean": sum(m * p for m, p in enumerate(pmf)),
            "occupancy_variance": occupancy_variance(
                self.dims, self.classes
            ),
            "occupancy_pmf": pmf,
        }

    def scaled_to(self, n: int) -> "CrossbarModel":
        """Same aggregate ("tilde") traffic on an ``n x n`` switch.

        Re-derives the per-pair parameters so that ``alpha~`` and
        ``beta~`` stay constant — exactly how the paper sweeps system
        size in Figures 1-4.
        """
        new_classes = []
        for cls in self.classes:
            new_classes.append(
                TrafficClass.from_aggregate(
                    cls.aggregate_alpha(self.dims.n2),
                    cls.aggregate_beta(self.dims.n2),
                    n2=n,
                    mu=cls.mu,
                    a=cls.a,
                    weight=cls.weight,
                    name=cls.name,
                )
            )
        return CrossbarModel(SwitchDimensions.square(n), tuple(new_classes))


def _solution_from_distribution(
    model: CrossbarModel, dist: StateDistribution
) -> PerformanceSolution:
    """Wrap a brute-force distribution in the common solution type.

    The H grids are only filled at the full dimensions (sub-dimension
    queries would need one enumeration each), which is enough for the
    standard measures at ``N``; Poisson concurrency reads H directly
    and bursty concurrency recurses into sub-grids, so those cells are
    filled by solving reduced systems when a bursty class is present.
    """
    import numpy as np

    from .state import permutation

    dims = model.dims
    h_grids = []
    needs_diagonal = any(c.is_bursty for c in model.classes)
    for r, cls in enumerate(model.classes):
        grid = np.zeros((dims.n1 + 1, dims.n2 + 1))
        a = cls.a
        points = [(dims.n1, dims.n2)]
        if needs_diagonal:
            m1, m2 = dims.n1 - a, dims.n2 - a
            while min(m1, m2) >= a:
                points.append((m1, m2))
                m1 -= a
                m2 -= a
        for m1, m2 in points:
            sub = SwitchDimensions(m1, m2)
            sub_dist = (
                dist if (m1, m2) == (dims.n1, dims.n2)
                else solve_brute_force(sub, model.classes)
            )
            grid[m1, m2] = sub_dist.non_blocking_probability(r) * (
                permutation(m1, a) * permutation(m2, a)
            )
        h_grids.append(grid)
    return PerformanceSolution(
        dims=dims,
        classes=model.classes,
        h=tuple(h_grids),
        log_q=None,
        method="brute-force",
    )
