"""Signed log-domain arithmetic used by the normalization recursions.

Algorithm 1 manipulates the normalization function
``Q(N) = G(N)/(N1! N2!)`` whose magnitude spans hundreds of orders of
magnitude across the ``(n1, n2)`` grid (``Q ~ 1/(n1! n2!)``), far beyond
float64 range for the paper's largest systems (``N = 256``).  The
library therefore carries ``Q`` in the log domain.

One wrinkle: the auxiliary quantity ``V(n, r)`` of eq. 9 is an
*alternating* sum for smooth (Bernoulli, ``beta < 0``) classes, so plain
``logaddexp`` is not enough.  This module provides a small vectorized
signed-log representation: a value is a pair ``(logmag, sign)`` with
``sign in {-1, 0, +1}`` and ``logmag = -inf`` exactly when ``sign == 0``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["signed_log_add", "signed_log_scale", "NEG_INF"]

NEG_INF = -np.inf


def signed_log_scale(
    logmag: np.ndarray, sign: np.ndarray, factor: float
) -> tuple[np.ndarray, np.ndarray]:
    """Multiply a signed-log array by a real scalar ``factor``.

    Returns new ``(logmag, sign)`` arrays; scaling by zero yields the
    signed-log zero ``(-inf, 0)`` everywhere.
    """
    logmag = np.asarray(logmag, dtype=float)
    sign = np.asarray(sign)
    if factor == 0.0:
        return np.full_like(logmag, NEG_INF), np.zeros_like(sign)
    out_log = logmag + np.log(abs(factor))
    out_sign = sign * (1 if factor > 0 else -1)
    return out_log, out_sign


def signed_log_add(
    la: np.ndarray,
    sa: np.ndarray,
    lb: np.ndarray,
    sb: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Elementwise ``a + b`` for signed-log values.

    Implements the usual max-shift trick; exact cancellation
    (``a == -b``) produces the signed-log zero.  Inputs may be scalars
    or broadcastable arrays.
    """
    la = np.asarray(la, dtype=float)
    lb = np.asarray(lb, dtype=float)
    sa = np.asarray(sa, dtype=int)
    sb = np.asarray(sb, dtype=int)
    la, lb, sa, sb = np.broadcast_arrays(la, lb, sa, sb)

    out_log = np.full(la.shape, NEG_INF, dtype=float)
    out_sign = np.zeros(la.shape, dtype=int)

    a_zero = sa == 0
    b_zero = sb == 0

    # One side zero: copy the other.
    only_b = a_zero & ~b_zero
    out_log[only_b] = lb[only_b]
    out_sign[only_b] = sb[only_b]
    only_a = ~a_zero & b_zero
    out_log[only_a] = la[only_a]
    out_sign[only_a] = sa[only_a]

    both = ~a_zero & ~b_zero
    if np.any(both):
        bl_a = la[both]
        bl_b = lb[both]
        bs_a = sa[both]
        bs_b = sb[both]
        top = np.maximum(bl_a, bl_b)
        with np.errstate(invalid="ignore"):
            total = bs_a * np.exp(bl_a - top) + bs_b * np.exp(bl_b - top)
        res_log = np.full(total.shape, NEG_INF)
        res_sign = np.zeros(total.shape, dtype=int)
        nonzero = total != 0.0
        res_log[nonzero] = top[nonzero] + np.log(np.abs(total[nonzero]))
        res_sign[nonzero] = np.sign(total[nonzero]).astype(int)
        out_log[both] = res_log
        out_sign[both] = res_sign

    return out_log, out_sign
