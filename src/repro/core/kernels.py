"""Vectorized NumPy kernels for the Algorithm 1/2 hot loops.

The pure-python sweeps in :mod:`repro.core.convolution` and
:mod:`repro.core.mva` are the *reference* implementations: every
numeric step routes through the generic signed-log helpers
(:mod:`repro.core.logspace`) or scalar double loops, which makes them
easy to audit against the paper but leaves 5-20x on the table.  This
module provides drop-in kernels that compute the same grids with
whole-column NumPy array operations and a near-minimal number of ufunc
dispatches per column:

``sweep_log``
    Bitwise-identical restructuring of ``_sweep_log``.  The sweep only
    ever sees classes with ``beta >= 0`` (smooth classes are folded in
    afterwards — see the convolution module's stability note), so every
    signed-log term is non-negative and the generic masked
    ``signed_log_add`` collapses to the positive-domain max-shift update
    ``top + log(exp(a - top) + exp(b - top))``.  That expression performs
    the *same float64 operations in the same order* as the reference
    helper does on non-negative operands, so the resulting ``log Q``
    grid is bit-for-bit equal — not merely close — which the
    equivalence suite asserts and the service byte-identity test
    relies on.
``sweep_float``
    The raw unscaled recurrence with preallocated buffers and in-place
    ufuncs, preserving the reference operation order exactly (bitwise
    equal output, same ``OverflowInRecursionError`` boundaries).
``sweep_scaled``
    A re-derivation of the Section 6 dynamic-scaling sweep in plain
    linear arithmetic: each ``Q`` column is renormalized to unit
    maximum with the running scale carried as one ``log`` offset per
    column (instead of a per-cell mantissa/exponent pair), and each
    ``V`` column is kept at the scale of the ``Q`` column it was built
    from, with scalar cross-scale weights realigning every term.  This
    is the fastest kernel but is *not* bitwise equal to the reference —
    it is tolerance-equivalent (well inside the method's 1e-9
    differential tolerance).  If the sweep leaves float64's range
    anyway (a renormalized column underflowing to exact zero, or a
    ``V`` chain overflowing — deep near-underflow territory around
    ``n1 >~ 170`` or extreme dynamic range), the kernel falls back to
    the reference ``_sweep_scaled`` and the result matches the pure
    python path bit for bit.
``solve_mva_numpy``
    Algorithm 2 with the ``m1`` axis vectorized.  The axis-2 ratio
    ``F_2(m1, m2)`` only references *previous* columns, so a whole
    column is computed at once; the same-column coupling of ``F_1`` is
    broken with the telescoping identity
    ``F_1(m1, m2) = F_1(m1, m2-1) F_2(m1, m2) / F_2(m1-1, m2)``.
    Tolerance-equivalent to the reference (1e-8).

Kernel selection
----------------
The public solvers accept ``kernel="python" | "numpy" | None``.  ``None``
defers to the process-wide default: :func:`set_default_kernel`, else the
``REPRO_KERNELS`` environment variable, else ``"python"`` (the reference
path keeps its historical behavior).  The dedicated ``SolveMethod``
entries (``convolution-numpy``, ``mva-numpy``, ...) pin the family
explicitly regardless of the knob.
"""

from __future__ import annotations

import math
import os
from collections.abc import Sequence

import numpy as np

from ..exceptions import (
    ComputationError,
    ConfigurationError,
    OverflowInRecursionError,
)
from .logspace import NEG_INF
from .state import SwitchDimensions
from .traffic import TrafficClass

__all__ = [
    "KERNEL_FAMILIES",
    "default_kernel",
    "set_default_kernel",
    "resolve_kernel",
    "sweep_log",
    "sweep_scaled",
    "sweep_float",
    "solve_mva_numpy",
    "scaled_fallback_count",
]

KERNEL_FAMILIES = ("python", "numpy")

#: Process-wide override installed by :func:`set_default_kernel`;
#: ``None`` means "consult the environment".
_DEFAULT_OVERRIDE: str | None = None

#: Counter of reference fallbacks taken by :func:`sweep_scaled`
#: (diagnostic; read through :func:`scaled_fallback_count`).
_SCALED_FALLBACKS = 0


def _validate_family(family: str) -> str:
    if family not in KERNEL_FAMILIES:
        raise ConfigurationError(
            f"unknown kernel family {family!r}; expected one of "
            f"{KERNEL_FAMILIES}"
        )
    return family


def default_kernel() -> str:
    """The kernel family used when a solver is called with ``kernel=None``."""
    if _DEFAULT_OVERRIDE is not None:
        return _DEFAULT_OVERRIDE
    env = os.environ.get("REPRO_KERNELS", "").strip()
    if env:
        return _validate_family(env)
    return "python"


def set_default_kernel(family: str | None) -> str | None:
    """Install a process-wide default kernel family; returns the previous
    override (``None`` if the environment/default was in effect).

    Pass ``None`` to drop the override and fall back to ``REPRO_KERNELS``.
    Intended to be set once at process start: the batched engine caches
    results per method name, so flipping the knob mid-process can serve
    a mix of kernel outputs for the tolerance-equivalent families.
    """
    global _DEFAULT_OVERRIDE
    previous = _DEFAULT_OVERRIDE
    _DEFAULT_OVERRIDE = None if family is None else _validate_family(family)
    return previous


def resolve_kernel(kernel: str | None) -> str:
    """Normalize an explicit ``kernel=`` argument (``None`` -> default)."""
    if kernel is None:
        return default_kernel()
    return _validate_family(kernel)


def scaled_fallback_count() -> int:
    """How many times ``sweep_scaled`` fell back to the reference sweep."""
    return _SCALED_FALLBACKS


def _class_constants(
    classes: Sequence[TrafficClass],
) -> list[tuple[int, int, bool, float | None, float]]:
    """Hoist the per-class scalars the column loops need.

    Returns ``(r, a, is_poisson, log_factor, log_b)`` per class where
    ``log_factor = log(a * rho)`` (``None`` when the factor is zero, in
    which case the class contributes nothing — same guard as the
    reference) and ``log_b = log(b)`` for bursty classes.  The logs are
    taken with ``np.log`` exactly as ``signed_log_scale`` does, so the
    shifted additions reproduce the reference bit for bit.
    """
    info = []
    for r, cls in enumerate(classes):
        factor = cls.a * cls.rho
        info.append(
            (
                r,
                cls.a,
                cls.is_poisson,
                float(np.log(abs(factor))) if factor > 0.0 else None,
                float(np.log(abs(cls.b))) if cls.is_bursty else 0.0,
            )
        )
    return info


# ----------------------------------------------------------------------
# Log-domain sweep (bitwise-identical to convolution._sweep_log)
# ----------------------------------------------------------------------


def sweep_log(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    collect_v: bool = False,
):
    """NumPy column sweep of the log-domain recurrence (eqs. 8-10).

    ``classes`` must already exclude smooth (``beta < 0``) classes —
    the caller folds those separately — so every term is non-negative
    and the positive-domain log-add below is bitwise-equivalent to the
    reference's ``signed_log_add``: pairwise ``top + log(exp(a - top)
    + exp(b - top))`` performs the same float64 operations in the same
    order (IEEE addition is commutative, so operand order inside the
    sum is free), the one-side-zero branch coincides with
    ``exp(-inf) = 0`` and ``log(1) = 0``, and the both-zero branch is
    an explicit ``-inf`` patch of the rows below the class bandwidth —
    the only cells where both operands can be the signed-log zero.

    With ``collect_v=True`` returns ``(lq, lv)`` where ``lv`` maps the
    index of each bursty class to its full ``log V(n, r)`` grid (eq. 9)
    for direct pointwise verification of the auxiliary recursion.
    """
    n1, n2 = dims.n1, dims.n2
    rows = n1 + 1
    # Transposed working layout: row ``col`` of ``lq_t`` is the grid
    # column ``n2 = col``, contiguous in memory for the inner ufuncs.
    lq_t = np.full((n2 + 1, rows), NEG_INF)
    lq_t[0] = -np.array([math.lgamma(m + 1) for m in range(rows)])
    info = _class_constants(classes)
    lv_t = {
        r: np.full((n2 + 1, rows), NEG_INF)
        for r, c in enumerate(classes)
        if c.is_bursty
    }

    acc = np.empty(rows)
    vsh = np.empty(rows)
    work = np.empty(rows)
    top = np.empty(rows)
    scratch = np.empty(rows)
    # One shared shifted-Q buffer per distinct bandwidth: classes with
    # equal ``a`` read the same shifted source column.
    qsh = {a: np.full(rows, NEG_INF) for _, a, _, _, _ in info}

    def posadd(dst: np.ndarray, other: np.ndarray, dead_below: int = 0) -> None:
        # dst = log(exp(dst) + exp(other)) with -inf as signed-log zero.
        # Rows below ``dead_below`` are the only cells where both
        # operands can be -inf (the (-inf) - (-inf) shift yields NaN
        # there); they are patched back to the signed-log zero exactly
        # as the reference's "both zero" mask does.
        np.maximum(dst, other, out=top)
        np.subtract(dst, top, out=scratch)
        np.exp(scratch, out=scratch)
        np.subtract(other, top, out=dst)
        np.exp(dst, out=dst)
        dst += scratch
        np.log(dst, out=dst)
        dst += top
        if dead_below:
            dst[:dead_below] = NEG_INF

    with np.errstate(invalid="ignore", divide="ignore"):
        for col in range(1, n2 + 1):
            np.copyto(acc, lq_t[col - 1])
            shifted: set[int] = set()
            for r, a, is_poisson, log_factor, log_b in info:
                if col < a or a >= rows:
                    # Every source term is the signed-log zero: the V
                    # column stays -inf (its initial value) and adding
                    # a zero term leaves the accumulator bitwise
                    # unchanged (the reference's one-side-zero copy).
                    continue
                src = qsh[a]
                if a not in shifted:
                    np.copyto(src[a:], lq_t[col - a][: rows - a])
                    shifted.add(a)
                if is_poisson:
                    term = src
                else:
                    vsh[:a] = NEG_INF
                    np.copyto(vsh[a:], lv_t[r][col - a][: rows - a])
                    vsh += log_b
                    posadd(vsh, src, dead_below=a)
                    lv_t[r][col] = vsh
                    term = vsh
                if log_factor is None:
                    # Zero arrival rate: the reference skips the
                    # accumulate (factor == 0 guard) after advancing V.
                    continue
                np.add(term, log_factor, out=work)
                posadd(acc, work)
            np.subtract(acc, math.log(col), out=lq_t[col])
    # Sweep classes have beta >= 0, so every term is non-negative and Q
    # stays strictly positive; a non-finite cell means the parameters
    # admit a negative rate (the reference's per-column sign check).
    if not np.isfinite(lq_t).all():
        raise ComputationError(
            "Q recursion produced a non-positive value; the Bernoulli "
            "parameters likely admit a negative arrival rate inside "
            "the state space"
        )
    lq = np.ascontiguousarray(lq_t.T)
    if collect_v:
        return lq, {r: np.ascontiguousarray(g.T) for r, g in lv_t.items()}
    return lq


# ----------------------------------------------------------------------
# Raw float sweep (bitwise-identical to convolution._sweep_float)
# ----------------------------------------------------------------------


def sweep_float(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> np.ndarray:
    """Buffer-reusing restructuring of the unscaled float sweep.

    Performs the reference's float64 operations in the same order (the
    shifts, the ``src + b * prev`` V update, the ``(a rho) * term``
    accumulate, the ``/= col`` normalization), so the output grid and
    the ``OverflowInRecursionError`` boundaries are bitwise identical.
    """
    n1, n2 = dims.n1, dims.n2
    rows = n1 + 1
    q_t = np.zeros((n2 + 1, rows))
    for m in range(rows):
        lg = -math.lgamma(m + 1)
        if lg < math.log(5e-324):
            raise OverflowInRecursionError(
                f"Q({m}, 0) = 1/{m}! underflows float64; "
                "use mode='scaled' or mode='log'"
            )
        q_t[0, m] = math.exp(lg)
    consts = [
        (r, c.a, c.is_poisson, c.a * c.rho, c.b) for r, c in enumerate(classes)
    ]
    v_t = {r: np.zeros((n2 + 1, rows)) for r, a, p, f, b in consts if not p}

    total = np.empty(rows)
    src = np.zeros(rows)
    prev = np.empty(rows)
    term = np.empty(rows)

    for col in range(1, n2 + 1):
        np.copyto(total, q_t[col - 1])
        for r, a, is_poisson, factor, b in consts:
            if col >= a and a < rows:
                src[:a] = 0.0
                np.copyto(src[a:], q_t[col - a][: rows - a])
            else:
                src.fill(0.0)
            if is_poisson:
                t = src
            else:
                if col >= a and a < rows:
                    prev[:a] = 0.0
                    np.copyto(prev[a:], v_t[r][col - a][: rows - a])
                else:
                    prev.fill(0.0)
                np.multiply(prev, b, out=prev)
                np.add(src, prev, out=prev)
                v_t[r][col] = prev
                t = prev
            np.multiply(t, factor, out=term)
            total += term
        total /= col
        if not np.all(np.isfinite(total)):
            raise OverflowInRecursionError(
                f"unscaled Algorithm 1 overflowed at column n2={col}"
            )
        if np.any(total[: min(col, n1) + 1] == 0.0):
            raise OverflowInRecursionError(
                f"unscaled Algorithm 1 underflowed to zero at column n2={col}; "
                "use mode='scaled' or mode='log'"
            )
        q_t[col] = total

    q = np.ascontiguousarray(q_t.T)
    with np.errstate(divide="ignore"):
        return np.where(q > 0.0, np.log(np.where(q > 0.0, q, 1.0)), NEG_INF)


# ----------------------------------------------------------------------
# Dynamic-scaling sweep (fast linear re-derivation with fallback)
# ----------------------------------------------------------------------


class _ScaledKernelFallback(Exception):
    """Internal: the fast sweep ran out of float64 range."""


def _sweep_scaled_fast(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> np.ndarray:
    n1, n2 = dims.n1, dims.n2
    rows = n1 + 1
    # qn_t[col] = Q(:, col) / exp(scale[col]), renormalized to unit
    # maximum — the Section 6 "re-choose omega every step" idea with
    # one scalar log offset per column instead of per-cell exponents.
    # V columns are kept at the scale of the Q column they were built
    # from (scale[col - a]); scalar weights realign every cross-column
    # term, so the inner loop is pure multiply-accumulate.
    qn_t = np.zeros((n2 + 1, rows))
    scale = np.zeros(n2 + 1)
    qn_t[0] = np.exp(-np.array([math.lgamma(m + 1) for m in range(rows)]))
    if qn_t[0, n1] == 0.0:
        # 1/n1! spans more than float64 within one column: the cell
        # magnitudes cannot share a single scale.  Reference territory.
        raise _ScaledKernelFallback
    # Classes with a zero arrival rate contribute nothing (their V
    # chain only feeds terms that are multiplied by the zero factor).
    consts = [
        (r, c.a, c.is_poisson, c.a * c.rho, c.b)
        for r, c in enumerate(classes)
        if c.a * c.rho > 0.0 and c.a < rows
    ]
    vn_t = {r: np.zeros((n2 + 1, rows)) for r, a, p, f, b in consts if not p}

    total = np.empty(rows)
    src = np.zeros(rows)

    for col in range(1, n2 + 1):
        np.copyto(total, qn_t[col - 1])
        for r, a, is_poisson, factor, b in consts:
            if col < a:
                continue  # all source terms are zero and V stays zero
            # Q terms from column col-a live at scale[col-a]; realign
            # them to the accumulator's scale[col-1].
            weight = factor * math.exp(scale[col - a] - scale[col - 1])
            if is_poisson:
                src[:a] = 0.0
                np.multiply(qn_t[col - a][: rows - a], weight, out=src[a:])
                total += src
            else:
                vcol = vn_t[r][col]
                if col >= 2 * a:
                    # b * V(n - aI, col - a): stored at scale[col - 2a].
                    wv = b * math.exp(scale[col - 2 * a] - scale[col - a])
                    np.multiply(vn_t[r][col - a][: rows - a], wv, out=vcol[a:])
                    vcol[a:] += qn_t[col - a][: rows - a]
                else:
                    np.copyto(vcol[a:], qn_t[col - a][: rows - a])
                np.multiply(vcol, weight, out=src)
                total += src
        peak = float(total.max())
        if not math.isfinite(peak) or peak <= 0.0:
            raise _ScaledKernelFallback
        np.multiply(total, 1.0 / peak, out=qn_t[col])
        scale[col] = scale[col - 1] + (math.log(peak) - math.log(col))
    for r, g in vn_t.items():
        if not np.isfinite(g).all():
            raise _ScaledKernelFallback  # a V chain left float64 range
    # Q is strictly positive at every grid point (the empty state always
    # fits), so an exact zero anywhere means a column's dynamic range
    # exceeded float64 mid-sweep — detected once here, after which the
    # caller re-runs the reference sweep from scratch.
    if np.any(qn_t == 0.0):
        raise _ScaledKernelFallback

    with np.errstate(divide="ignore"):
        lq_t = np.log(qn_t)
    lq_t += scale[:, np.newaxis]
    return np.ascontiguousarray(lq_t.T)


def sweep_scaled(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> np.ndarray:
    """Fast dynamic-scaling sweep; falls back to the reference on under/overflow.

    The fallback (columns whose cells span more than float64's range,
    e.g. ``n1 >~ 170``, or a ``V`` chain overflowing under extreme
    dynamic range) re-runs the exact reference ``_sweep_scaled``, so
    fallback results match the pure python path bit for bit.  The count
    of fallbacks taken is exposed through :func:`scaled_fallback_count`.
    """
    try:
        return _sweep_scaled_fast(dims, classes)
    except _ScaledKernelFallback:
        global _SCALED_FALLBACKS
        _SCALED_FALLBACKS += 1
        from .convolution import _sweep_scaled

        return _sweep_scaled(dims, classes)


# ----------------------------------------------------------------------
# Algorithm 2 (MVA) with the m1 axis vectorized
# ----------------------------------------------------------------------


def solve_mva_numpy(dims: SwitchDimensions, classes: Sequence[TrafficClass]):
    """Column-vectorized mean value analysis (Algorithm 2).

    The axis-2 factorization ``H_r = F_2 K_{r2}`` only references
    previously completed columns, so ``F_2``, ``H_r`` and ``Dhat_r``
    are computed one whole column at a time; ``F_1`` is recovered per
    column from the telescoping ratio identity (see module docstring).
    Returns the same :class:`~repro.core.measures.PerformanceSolution`
    (with ``solution.grids`` attached) as the reference ``solve_mva``.
    """
    from .measures import PerformanceSolution
    from .mva import MvaGrids, _check_smooth_stability

    classes = tuple(classes)
    if not classes:
        raise ConfigurationError("at least one traffic class is required")
    for cls in classes:
        if cls.a <= dims.capacity:
            cls.validate_for(dims.n1, dims.n2)
        _check_smooth_stability(dims, cls)

    n1, n2 = dims.n1, dims.n2
    rows = n1 + 1
    # Transposed working grids: row ``col`` is grid column ``n2 = col``.
    f1_t = np.full((n2 + 1, rows), np.nan)
    f2_t = np.full((n2 + 1, rows), np.nan)
    # F_i at the m=0 boundary (only the empty state fits): F_1(m1, 0) = m1.
    f1_base = np.arange(rows, dtype=float)
    f1_t[0, 1:] = f1_base[1:]
    f2_t[1:, 0] = np.arange(1, n2 + 1, dtype=float)

    consts = [
        (r, c.a, c.is_poisson, c.a * c.rho, c.b) for r, c in enumerate(classes)
    ]
    h_t = [np.zeros((n2 + 1, rows)) for _ in classes]
    dhat_t = [np.zeros((n2 + 1, rows)) for _ in classes]
    k2 = [np.zeros(rows) for _ in classes]
    cvec = [np.ones(rows) for _ in classes]

    denom2 = np.empty(rows)
    work = np.empty(rows)

    for col in range(1, n2 + 1):
        denom2.fill(1.0)
        fits = []
        for r, a, is_poisson, load, b in consts:
            if col < a or a > n1:
                continue
            fits.append(r)
            f1_prev = f1_t[col - a] if col > a else f1_base
            # K_{r2}(m1, col) = prod_{m=1..a} F_1(m1-a+m, col-a)
            #                 * prod_{m=1..a-1} F_2(m1, col-a+m)
            # (paper eq. 14/20, the axis-2 lattice path); rows < a are
            # outside the class's feasible wedge and zeroed so they
            # contribute nothing anywhere below.
            k2_r = k2[r]
            k2_r[:a] = 0.0
            k2_r[a:] = f1_prev[1 : rows - a + 1]  # m = 1 term
            for m in range(2, a + 1):
                k2_r[a:] *= f1_prev[m : rows - a + m]
            for m in range(1, a):
                k2_r[a:] *= f2_t[col - a + m][a:]
            if is_poisson:
                np.multiply(k2_r, load, out=work)
            else:
                c_r = cvec[r]
                np.multiply(dhat_t[r][col - a][: rows - a], b, out=c_r[a:])
                c_r[a:] += 1.0
                np.multiply(c_r, load, out=work)
                work *= k2_r
            denom2 += work
        if not np.all(np.isfinite(denom2)) or np.any(denom2 <= 0.0):
            raise ComputationError(
                f"MVA denominator non-positive at column n2={col}; "
                "Bernoulli parameters admit negative arrival rates"
            )
        f2col = f2_t[col]
        np.divide(col, denom2, out=f2col)  # row 0 is col/1 == the boundary
        # F_1(m1, col) = F_1(m1, col-1) * F_2(m1, col) / F_2(m1-1, col):
        # both F_2 factors are now known, breaking the same-column
        # dependency that forces the reference into a scalar m1 loop.
        f1_prev_col = f1_t[col - 1] if col > 1 else f1_base
        np.multiply(f1_prev_col[1:], f2col[1:], out=f1_t[col][1:])
        f1_t[col][1:] /= f2col[:-1]
        for r, a, is_poisson, load, b in consts:
            if r not in fits:
                continue
            h_col = h_t[r][col]
            np.multiply(f2col, k2[r], out=h_col)
            if is_poisson:
                dhat_t[r][col] = h_col
            else:
                np.multiply(h_col, cvec[r], out=dhat_t[r][col])

    grids = MvaGrids(dims, classes)
    grids.f1 = np.ascontiguousarray(f1_t.T)
    grids.f2 = np.ascontiguousarray(f2_t.T)
    grids.h = [np.ascontiguousarray(g.T) for g in h_t]
    grids.dhat = [np.ascontiguousarray(g.T) for g in dhat_t]

    solution = PerformanceSolution(
        dims=dims,
        classes=classes,
        h=tuple(grids.h),
        log_q=None,
        method="mva",
    )
    solution.grids = grids  # expose raw grids for diagnostics/tests
    solution.kernel = "numpy"
    return solution
