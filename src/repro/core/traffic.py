"""Traffic classes and Bernoulli-Poisson-Pascal (BPP) arrival statistics.

The paper models ``R`` classes of connection requests.  A class ``r``
requires ``a_r`` inputs and ``a_r`` outputs per connection and generates
requests for a *particular* set of inputs and outputs according to a
linear state-dependent (BPP) arrival process

    ``lambda_r(k_r) = alpha_r + beta_r * k_r``

where ``k_r`` is the number of class-``r`` connections currently in
progress.  Holding times have mean ``1/mu_r`` (the model is insensitive
to the holding-time distribution beyond its mean).

Depending on ``beta_r`` the number of busy servers the class would
occupy on an infinite-server group is distributed as

* **Bernoulli** (smooth, ``Z < 1``)  for ``beta_r < 0`` with
  ``-alpha_r/beta_r`` a positive integer (the "number of sources"),
* **Poisson**   (regular, ``Z = 1``) for ``beta_r = 0``,
* **Pascal**    (peaky, ``Z > 1``)   for ``beta_r > 0``,

which is why the unified family is called Bernoulli-Poisson-Pascal.

Two parameterizations appear in the paper and both are supported here:

* *per-pair* parameters ``alpha_r``, ``beta_r`` — the rate for one
  particular (input-set, output-set) combination; this is what enters
  the product-form solution; and
* *aggregate* ("tilde") parameters ``alpha~_r = C(N2, a_r) alpha_r``,
  ``beta~_r = C(N2, a_r) beta_r`` — the rate for a particular input set
  and *any* output set, which is how the paper's figures and tables are
  labelled.

Use :meth:`TrafficClass.from_aggregate` to build a class from the
paper's tilde parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..exceptions import InvalidParameterError

__all__ = [
    "TrafficClass",
    "bpp_mean",
    "bpp_variance",
    "bpp_peakedness",
    "classify_bpp",
    "fit_bpp_from_moments",
    "SMOOTH",
    "REGULAR",
    "PEAKY",
]

#: Traffic-kind labels (values of :func:`classify_bpp` and
#: :attr:`TrafficClass.kind`).
SMOOTH = "bernoulli"
REGULAR = "poisson"
PEAKY = "pascal"


def bpp_mean(alpha: float, beta: float, mu: float = 1.0) -> float:
    """Mean number of busy servers on an infinite server group.

    For the linear birth rate ``alpha + beta*k`` and per-connection
    death rate ``mu`` the stationary occupancy has mean
    ``M = alpha / (mu - beta)`` (the paper's ``M = alpha/(1-beta)``
    with ``mu = 1``).
    """
    if beta >= mu:
        raise InvalidParameterError(
            f"BPP mean undefined: beta ({beta}) must be < mu ({mu}) "
            "for the infinite-server occupancy to be finite"
        )
    return alpha / (mu - beta)


def bpp_variance(alpha: float, beta: float, mu: float = 1.0) -> float:
    """Variance of the infinite-server occupancy, ``V = alpha*mu/(mu-beta)^2``."""
    if beta >= mu:
        raise InvalidParameterError(
            f"BPP variance undefined: beta ({beta}) must be < mu ({mu})"
        )
    return alpha * mu / (mu - beta) ** 2


def bpp_peakedness(beta: float, mu: float = 1.0) -> float:
    """Peakedness (Z-factor) ``Z = V/M = mu/(mu - beta)``.

    ``Z > 1`` is peaky (Pascal), ``Z = 1`` regular (Poisson) and
    ``Z < 1`` smooth (Bernoulli).
    """
    if beta >= mu:
        raise InvalidParameterError(
            f"peakedness undefined: beta ({beta}) must be < mu ({mu})"
        )
    return mu / (mu - beta)


def classify_bpp(alpha: float, beta: float) -> str:
    """Classify BPP parameters as smooth/regular/peaky.

    Returns one of :data:`SMOOTH` (``beta < 0``), :data:`REGULAR`
    (``beta == 0``) or :data:`PEAKY` (``beta > 0``).
    """
    if alpha < 0:
        raise InvalidParameterError(f"alpha must be >= 0, got {alpha}")
    if beta < 0:
        return SMOOTH
    if beta == 0:
        return REGULAR
    return PEAKY


def fit_bpp_from_moments(
    mean: float, peakedness: float, mu: float = 1.0
) -> tuple[float, float]:
    """Return ``(alpha, beta)`` matching a target mean and Z-factor.

    Inverts ``M = alpha/(mu-beta)`` and ``Z = mu/(mu-beta)``:
    ``beta = mu (1 - 1/Z)`` and ``alpha = M mu / Z``.  A smooth target
    (``Z < 1``) yields ``beta < 0``; a peaky one (``Z > 1``) yields
    ``0 < beta < mu``.
    """
    if mean < 0:
        raise InvalidParameterError(f"mean must be >= 0, got {mean}")
    if peakedness <= 0:
        raise InvalidParameterError(
            f"peakedness must be > 0, got {peakedness}"
        )
    if mu <= 0:
        raise InvalidParameterError(f"mu must be > 0, got {mu}")
    beta = mu * (1.0 - 1.0 / peakedness)
    alpha = mean * mu / peakedness
    return alpha, beta


@dataclass(frozen=True)
class TrafficClass:
    """One class of connection requests offered to the crossbar.

    Parameters
    ----------
    alpha:
        State-independent part of the per-pair arrival rate
        ``lambda(k) = alpha + beta*k`` (requests per unit time for one
        particular set of ``a`` inputs and ``a`` outputs).
    beta:
        State-dependent part of the per-pair arrival rate.  Negative
        for smooth (Bernoulli), zero for Poisson, positive for peaky
        (Pascal) traffic.
    mu:
        Service (connection-teardown) rate; mean holding time ``1/mu``.
    a:
        Bandwidth requirement: number of input/output pairs one
        connection of this class occupies (the paper's ``a_r``).
    weight:
        Revenue ``w_r`` earned per connection in progress (Section 4 of
        the paper).  Defaults to ``mu`` so that with all-default
        weights the total revenue equals the system throughput.
    name:
        Optional label used in reports.
    """

    alpha: float
    beta: float = 0.0
    mu: float = 1.0
    a: int = 1
    weight: float | None = None
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise InvalidParameterError(
                f"alpha must be >= 0, got {self.alpha}"
            )
        if self.mu <= 0:
            raise InvalidParameterError(f"mu must be > 0, got {self.mu}")
        if self.a < 1:
            raise InvalidParameterError(
                f"bandwidth requirement a must be >= 1, got {self.a}"
            )
        if self.beta >= self.mu:
            raise InvalidParameterError(
                f"beta ({self.beta}) must be < mu ({self.mu}): the Pascal "
                "normalization diverges at beta = mu"
            )
        if self.weight is None:
            object.__setattr__(self, "weight", self.mu)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def poisson(
        cls,
        rho: float,
        mu: float = 1.0,
        a: int = 1,
        weight: float | None = None,
        name: str = "",
    ) -> "TrafficClass":
        """Poisson class with offered per-pair load ``rho = alpha/mu``."""
        return cls(alpha=rho * mu, beta=0.0, mu=mu, a=a, weight=weight, name=name)

    @classmethod
    def from_aggregate(
        cls,
        alpha_tilde: float,
        beta_tilde: float,
        n2: int,
        mu: float = 1.0,
        a: int = 1,
        weight: float | None = None,
        name: str = "",
    ) -> "TrafficClass":
        """Build from the paper's aggregate ("tilde") parameters.

        The paper specifies traffic by the rate for a particular set of
        inputs and *any* set of outputs; the per-pair rate divides by
        the number of output sets: ``alpha = alpha~ / C(n2, a)``.
        """
        if n2 < a:
            raise InvalidParameterError(
                f"cannot scale aggregate parameters: n2={n2} < a={a}"
            )
        sets = math.comb(n2, a)
        return cls(
            alpha=alpha_tilde / sets,
            beta=beta_tilde / sets,
            mu=mu,
            a=a,
            weight=weight,
            name=name,
        )

    @classmethod
    def from_service_slowdown(
        cls,
        v: float,
        delta: float,
        mu: float = 1.0,
        a: int = 1,
        weight: float | None = None,
        name: str = "",
    ) -> "TrafficClass":
        """Build from the paper's state-dependent-service interpretation.

        Section 2 notes the model is equivalent to unit-rate Poisson
        arrivals with the state-dependent service rate
        ``mu(k) = k mu / (v + delta k)``: ``delta > 1`` models slow-down
        under congestion, ``0 < delta < 1`` improved efficiency, and
        ``delta = 0`` recovers the plain infinite-server node.  The
        equivalent BPP arrival parameters are ``alpha = v + delta`` and
        ``beta = delta``.
        """
        if v < 0:
            raise InvalidParameterError(f"v must be >= 0, got {v}")
        return cls(
            alpha=v + delta, beta=delta, mu=mu, a=a, weight=weight,
            name=name,
        )

    @classmethod
    def from_moments(
        cls,
        mean: float,
        peakedness: float,
        mu: float = 1.0,
        a: int = 1,
        weight: float | None = None,
        name: str = "",
    ) -> "TrafficClass":
        """Build from an infinite-server mean and Z-factor."""
        alpha, beta = fit_bpp_from_moments(mean, peakedness, mu)
        return cls(alpha=alpha, beta=beta, mu=mu, a=a, weight=weight, name=name)

    @classmethod
    def bernoulli(
        cls,
        sources: int,
        per_source_rate: float,
        mu: float = 1.0,
        a: int = 1,
        weight: float | None = None,
        name: str = "",
    ) -> "TrafficClass":
        """Finite-source (Engset-like) smooth class.

        ``sources`` idle sources each generate requests at
        ``per_source_rate``; an active source generates none, so
        ``lambda(k) = per_source_rate * (sources - k)`` which is BPP
        with ``alpha = sources * per_source_rate`` and
        ``beta = -per_source_rate``.
        """
        if sources < 1:
            raise InvalidParameterError(
                f"sources must be >= 1, got {sources}"
            )
        if per_source_rate <= 0:
            raise InvalidParameterError(
                f"per_source_rate must be > 0, got {per_source_rate}"
            )
        return cls(
            alpha=sources * per_source_rate,
            beta=-per_source_rate,
            mu=mu,
            a=a,
            weight=weight,
            name=name,
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def rho(self) -> float:
        """Offered per-pair load of the smooth part, ``rho = alpha/mu``."""
        return self.alpha / self.mu

    @property
    def b(self) -> float:
        """Normalized burstiness ``b = beta/mu`` (the recursion constant)."""
        return self.beta / self.mu

    @property
    def peakedness(self) -> float:
        """Z-factor of the class, ``Z = mu/(mu - beta)``."""
        return bpp_peakedness(self.beta, self.mu)

    @property
    def kind(self) -> str:
        """One of ``"bernoulli"``, ``"poisson"``, ``"pascal"``."""
        return classify_bpp(self.alpha, self.beta)

    @property
    def is_poisson(self) -> bool:
        """True when ``beta == 0`` (the paper's class group ``R1``)."""
        return self.beta == 0.0

    @property
    def is_bursty(self) -> bool:
        """True when ``beta != 0`` (the paper's class group ``R2``)."""
        return self.beta != 0.0

    @property
    def sources(self) -> float | None:
        """For Bernoulli traffic, the implied number of sources ``-alpha/beta``.

        ``None`` for Poisson/Pascal traffic.  The paper requires this to
        be a (negative of a) negative integer for a proper Bernoulli
        interpretation; :meth:`validate_for` enforces the weaker
        condition that the arrival rate stays non-negative on all
        reachable states.
        """
        if self.beta >= 0:
            return None
        return -self.alpha / self.beta

    def rate(self, k: int) -> float:
        """Per-pair arrival rate ``lambda(k) = alpha + beta*k`` in state k.

        Clamped at zero for Bernoulli classes whose source pool is
        exhausted (``k > sources``): a negative rate is meaningless.
        """
        return max(0.0, self.alpha + self.beta * k)

    def aggregate_alpha(self, n2: int) -> float:
        """The paper's ``alpha~`` for a switch with ``n2`` outputs."""
        return self.alpha * math.comb(n2, self.a)

    def aggregate_beta(self, n2: int) -> float:
        """The paper's ``beta~`` for a switch with ``n2`` outputs."""
        return self.beta * math.comb(n2, self.a)

    def with_weight(self, weight: float) -> "TrafficClass":
        """Copy of this class with a different revenue weight."""
        return replace(self, weight=weight)

    def validate_for(self, n1: int, n2: int) -> None:
        """Check admissibility on an ``n1 x n2`` switch.

        Raises :class:`InvalidParameterError` when the class cannot be
        carried at all (``a > min(n1, n2)``) or when a Bernoulli class
        would produce a negative arrival rate on a reachable state
        (the paper's condition ``alpha + beta*n >= 0`` for
        ``n <= max(n1, n2)``; we only require it on *reachable* states,
        ``n <= min(n1, n2) // a``).
        """
        cap = min(n1, n2)
        if self.a > cap:
            raise InvalidParameterError(
                f"class {self.name or '?'} needs a={self.a} pairs but the "
                f"switch supports at most min(n1, n2)={cap}"
            )
        if self.beta < 0:
            sources = -self.alpha / self.beta
            if abs(sources - round(sources)) <= 1e-9 * max(1.0, sources):
                # Integer source count: the arrival rate hits exactly
                # zero at k = sources and the product-form weights (and
                # the negative-binomial series in the recursions)
                # terminate there — valid for any switch size.
                return
            k_max = cap // self.a
            # Tolerate infinitesimally negative rates (they arise from
            # finite-difference perturbations of integer-source classes
            # and contribute O(tol) weight to one boundary state).
            if self.alpha + self.beta * (k_max - 1) < -1e-6 * self.alpha:
                raise InvalidParameterError(
                    f"Bernoulli class {self.name or '?'}: non-integer "
                    f"source count {sources:.6g} and the arrival rate "
                    f"alpha + beta*k goes negative within the reachable "
                    f"state space (k up to {k_max})"
                )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name or 'class'}: {self.kind}, a={self.a}, "
            f"alpha={self.alpha:.6g}, beta={self.beta:.6g}, mu={self.mu:.6g}, "
            f"Z={self.peakedness:.4g}, weight={self.weight:.6g}"
        )
