"""Switch dimensions and the state space ``Gamma(N)`` of the crossbar.

The system state is the vector ``k = (k_1, ..., k_R)`` of concurrent
connections per class.  With bandwidth requirements
``A = (a_1, ..., a_R)`` the state space is

    ``Gamma(N) = { k : 0 <= k . A <= min(N1, N2) }``

(paper, Section 2): a connection of class ``r`` occupies ``a_r`` inputs
and ``a_r`` outputs, and inputs/outputs cannot be shared, so the total
number of occupied pairs ``k . A`` is bounded by the smaller dimension.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .traffic import TrafficClass

__all__ = [
    "SwitchDimensions",
    "iter_states",
    "state_space_size",
    "occupancy",
    "max_connections",
]


@dataclass(frozen=True, order=True)
class SwitchDimensions:
    """Dimensions ``(N1, N2)`` of the crossbar: ``N1`` inputs, ``N2`` outputs."""

    n1: int
    n2: int

    def __post_init__(self) -> None:
        if self.n1 < 0 or self.n2 < 0:
            raise ConfigurationError(
                f"switch dimensions must be non-negative, got {self.n1}x{self.n2}"
            )

    @classmethod
    def square(cls, n: int) -> "SwitchDimensions":
        """An ``n x n`` switch (the paper's ``N1 = N2 = N`` examples)."""
        return cls(n, n)

    @property
    def capacity(self) -> int:
        """``min(N1, N2)`` — the maximum number of occupied pairs."""
        return min(self.n1, self.n2)

    @property
    def crosspoints(self) -> int:
        """``N1 * N2`` — number of crosspoints in the fabric."""
        return self.n1 * self.n2

    def shrink(self, amount: int) -> "SwitchDimensions":
        """The reduced switch ``N - amount * I`` used by ``B_r`` and ``E_r``.

        Dimensions are floored at zero, matching the convention that
        ``G`` of a "negative" switch is zero (handled by callers).
        """
        return SwitchDimensions(max(0, self.n1 - amount), max(0, self.n2 - amount))

    def contains(self, other: "SwitchDimensions") -> bool:
        """True when ``other`` fits inside this switch coordinate-wise."""
        return other.n1 <= self.n1 and other.n2 <= self.n2

    def free_pairs(self, used: int) -> tuple[int, int]:
        """Free inputs and outputs when ``used`` pairs are occupied."""
        if used < 0 or used > self.capacity:
            raise ConfigurationError(
                f"occupancy {used} outside [0, {self.capacity}]"
            )
        return self.n1 - used, self.n2 - used

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.n1}x{self.n2}"


def occupancy(state: Sequence[int], classes: Sequence[TrafficClass]) -> int:
    """Total occupied pairs ``k . A`` of a state vector."""
    if len(state) != len(classes):
        raise ConfigurationError(
            f"state has {len(state)} entries but there are "
            f"{len(classes)} classes"
        )
    return sum(k * c.a for k, c in zip(state, classes))


def max_connections(dims: SwitchDimensions, cls: TrafficClass) -> int:
    """Largest ``k_r`` reachable for one class alone: ``capacity // a_r``."""
    return dims.capacity // cls.a


def iter_states(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> Iterator[tuple[int, ...]]:
    """Enumerate ``Gamma(N)`` in lexicographic order.

    Yields every vector ``k`` with ``0 <= k . A <= min(N1, N2)``.  The
    enumeration is depth-first over classes so memory use is ``O(R)``.
    """
    cap = dims.capacity
    weights = [c.a for c in classes]
    r = len(weights)
    state = [0] * r

    def recurse(idx: int, remaining: int) -> Iterator[tuple[int, ...]]:
        if idx == r:
            yield tuple(state)
            return
        w = weights[idx]
        for k in range(remaining // w + 1):
            state[idx] = k
            yield from recurse(idx + 1, remaining - k * w)
        state[idx] = 0

    yield from recurse(0, cap)


def state_space_size(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> int:
    """Number of states in ``Gamma(N)`` (computed without enumeration).

    Uses the classic coin-change dynamic program: the number of
    ``k >= 0`` with ``k . A = m`` summed over ``m = 0..capacity``.
    """
    cap = dims.capacity
    counts = [0] * (cap + 1)
    counts[0] = 1
    for cls in classes:
        w = cls.a
        for m in range(w, cap + 1):
            counts[m] += counts[m - w]
    return sum(counts)


def occupancy_counts(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> list[int]:
    """Number of states with each total occupancy ``m = 0..capacity``."""
    cap = dims.capacity
    counts = [0] * (cap + 1)
    counts[0] = 1
    for cls in classes:
        w = cls.a
        for m in range(w, cap + 1):
            counts[m] += counts[m - w]
    return counts


def log_permutation(n: int, a: int) -> float:
    """``log P(n, a) = log( n! / (n-a)! )``; ``-inf`` if ``a > n``."""
    if a > n:
        return -math.inf
    return math.lgamma(n + 1) - math.lgamma(n - a + 1)


def permutation(n: int, a: int) -> int:
    """Falling factorial ``P(n, a) = n (n-1) ... (n-a+1)`` (paper eq. 11).

    Zero when ``a > n`` — the number of ways to pick an ordered tuple of
    ``a`` distinct items from ``n`` — which is exactly the boundary
    convention the recursions rely on.
    """
    if a < 0:
        raise ConfigurationError(f"a must be >= 0, got {a}")
    if a > n:
        return 0
    return math.perm(n, a)
