"""Revenue-oriented performance analysis (paper Section 4).

An accepted connection of class ``r`` earns revenue ``w_r`` while it is
in progress, so the long-run average return is the weighted throughput

    ``W(N) = sum_r w_r E_r(N)``.

The effect of offering more class-``r`` load is the gradient of ``W``:

* for a system with only Poisson classes the paper gives the closed
  form (generalized here to ``a_r >= 1``)

      ``dW/d rho_r = P(N1, a_r) P(N2, a_r) B_r(N)
                      ( w_r - [W(N) - W(N - a_r I)] )``

  whose bracket is the **shadow cost** ``Delta W``: an accepted request
  earns ``w_r`` but displaces ``Delta W`` of other traffic.  Class-``r``
  growth raises total revenue iff ``w_r > Delta W``;

* for mixes containing bursty classes no closed form exists (paper,
  Section 4) and the gradients ``dW/d rho_r`` and ``dW/d (beta_r/mu_r)``
  are approximated by finite differences, exactly as the paper does
  (forward differences; central differences are also offered).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import replace

from ..exceptions import ConfigurationError
from .convolution import solve_convolution
from .measures import PerformanceSolution
from .state import SwitchDimensions, permutation
from .traffic import TrafficClass

__all__ = [
    "shadow_cost",
    "marginal_value",
    "gradient_rho_closed_form",
    "gradient_rho",
    "gradient_burstiness",
    "port_marginal_revenue",
    "revenue_report",
]

Solver = Callable[
    [SwitchDimensions, Sequence[TrafficClass]], PerformanceSolution
]


def shadow_cost(solution: PerformanceSolution, r: int) -> float:
    """``Delta W = W(N) - W(N - a_r I)`` — revenue displaced per accept.

    Uses the solved grid, so no re-solve is needed: the reduced system
    ``N - a_r I`` is a sub-rectangle of the solved one.
    """
    dims = solution.dims
    a = solution.classes[r].a
    reduced = dims.shrink(a)
    return solution.revenue() - solution.revenue(at=reduced)


def marginal_value(solution: PerformanceSolution, r: int) -> float:
    """``w_r - Delta W`` — net worth of one more class-``r`` accept.

    Positive: growing class ``r`` raises total revenue.  Negative: the
    class crowds out more valuable traffic (the paper's economic
    interpretation).
    """
    return solution.classes[r].weight - shadow_cost(solution, r)


def gradient_rho_closed_form(solution: PerformanceSolution, r: int) -> float:
    """Closed-form ``dW/d rho_r`` — valid only for all-Poisson mixes.

    Raises :class:`ConfigurationError` when any class is bursty, since
    the closed form does not hold then (paper, Section 4).
    """
    for cls in solution.classes:
        if cls.is_bursty:
            raise ConfigurationError(
                "closed-form gradient requires all classes Poisson "
                f"(class {cls.name or '?'} has beta != 0); "
                "use gradient_rho() for a numerical value"
            )
    dims = solution.dims
    a = solution.classes[r].a
    prefactor = permutation(dims.n1, a) * permutation(dims.n2, a)
    return prefactor * solution.non_blocking(r) * marginal_value(solution, r)


def _perturbed(
    classes: Sequence[TrafficClass], r: int, d_alpha: float, d_beta: float
) -> list[TrafficClass]:
    out = list(classes)
    out[r] = replace(
        out[r], alpha=out[r].alpha + d_alpha, beta=out[r].beta + d_beta
    )
    return out


def _finite_difference(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    r: int,
    d_alpha: float,
    d_beta: float,
    step: float,
    scheme: str,
    solver: Solver,
) -> float:
    if scheme == "forward":
        base = solver(dims, classes).revenue()
        bumped = solver(
            dims, _perturbed(classes, r, d_alpha * step, d_beta * step)
        ).revenue()
        return (bumped - base) / step
    if scheme == "central":
        up = solver(
            dims, _perturbed(classes, r, d_alpha * step, d_beta * step)
        ).revenue()
        down = solver(
            dims, _perturbed(classes, r, -d_alpha * step, -d_beta * step)
        ).revenue()
        return (up - down) / (2.0 * step)
    raise ConfigurationError(
        f"unknown scheme {scheme!r}; expected 'forward' or 'central'"
    )


def gradient_rho(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    r: int,
    step: float = 1e-7,
    scheme: str = "forward",
    solver: Solver = solve_convolution,
) -> float:
    """Numerical ``dW/d rho_r`` (per-pair load of the smooth part).

    ``rho_r = alpha_r/mu_r``, so the perturbation bumps ``alpha_r`` by
    ``mu_r * step``.  The paper uses forward differences; pass
    ``scheme="central"`` for second-order accuracy.
    """
    mu = classes[r].mu
    return _finite_difference(
        dims, classes, r, d_alpha=mu, d_beta=0.0, step=step,
        scheme=scheme, solver=solver,
    )


def gradient_burstiness(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    r: int,
    step: float = 1e-7,
    scheme: str = "forward",
    solver: Solver = solve_convolution,
) -> float:
    """Numerical ``dW/d (beta_r/mu_r)`` — the paper's bursty-load gradient.

    A negative value means increasing class-``r`` peakedness *lowers*
    total revenue (Table 2's main finding).
    """
    mu = classes[r].mu
    return _finite_difference(
        dims, classes, r, d_alpha=0.0, d_beta=mu, step=step,
        scheme=scheme, solver=solver,
    )


def port_marginal_revenue(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    solver: Solver = solve_convolution,
) -> dict:
    """Revenue gained by growing the fabric by one port.

    Answers the provisioning question dual to the traffic gradients:
    given this traffic, what is one more input, one more output, or one
    more of each worth?  Returns the revenue deltas (the extra
    crosspoints each option costs are ``n2``, ``n1`` and
    ``n1 + n2 + 1`` respectively, so the dict also reports revenue per
    added crosspoint — the figure of merit for an ``O(N^2)`` fabric).
    """
    base = solver(dims, classes).revenue()
    wider = solver(
        SwitchDimensions(dims.n1 + 1, dims.n2), classes
    ).revenue()
    taller = solver(
        SwitchDimensions(dims.n1, dims.n2 + 1), classes
    ).revenue()
    both = solver(
        SwitchDimensions(dims.n1 + 1, dims.n2 + 1), classes
    ).revenue()
    return {
        "base_revenue": base,
        "add_input": wider - base,
        "add_output": taller - base,
        "add_both": both - base,
        "add_input_per_crosspoint": (wider - base) / dims.n2
        if dims.n2
        else 0.0,
        "add_output_per_crosspoint": (taller - base) / dims.n1
        if dims.n1
        else 0.0,
        "add_both_per_crosspoint": (both - base)
        / (dims.n1 + dims.n2 + 1),
    }


def revenue_report(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    solver: Solver = solve_convolution,
    step: float = 1e-7,
) -> dict:
    """One-stop revenue analysis: ``W``, and per class ``B_r``, ``E_r``,
    shadow cost, marginal value and both gradients.

    Returns a plain dict (JSON-friendly) keyed by measure name.
    """
    solution = solver(dims, classes)
    per_class = []
    for r, cls in enumerate(classes):
        if cls.is_poisson:
            grad_rho = gradient_rho(
                dims, classes, r, step=step, solver=solver
            )
            grad_beta = None
        else:
            grad_rho = gradient_rho(
                dims, classes, r, step=step, solver=solver
            )
            grad_beta = gradient_burstiness(
                dims, classes, r, step=step, solver=solver
            )
        per_class.append(
            {
                "name": cls.name or f"class-{r}",
                "kind": cls.kind,
                "weight": cls.weight,
                "blocking": solution.blocking(r),
                "concurrency": solution.concurrency(r),
                "shadow_cost": shadow_cost(solution, r),
                "marginal_value": marginal_value(solution, r),
                "dW_drho": grad_rho,
                "dW_dburstiness": grad_beta,
            }
        )
    return {
        "dims": (dims.n1, dims.n2),
        "revenue": solution.revenue(),
        "throughput": solution.total_throughput(),
        "classes": per_class,
    }
