"""Exact rational-arithmetic evaluation of Algorithm 1.

Runs the paper's recurrence (eqs. 8-10) in :class:`fractions.Fraction`
arithmetic, so the result has **zero** rounding error.  This is the
oracle used to quantify the floating-point error of the ``"float"``,
``"scaled"`` and ``"log"`` modes of
:mod:`repro.core.convolution` and of Algorithm 2 — the numerical-
stability comparison the paper makes qualitatively in Section 5.1.

Cost grows quickly (Fraction numerators accumulate digits), so this is
meant for moderate systems (``N ≲ 64``); the test-suite uses it up to
``N = 40``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from fractions import Fraction

import numpy as np

from ..exceptions import ConfigurationError
from .measures import PerformanceSolution
from .state import SwitchDimensions
from .traffic import TrafficClass

__all__ = ["solve_exact", "exact_q_table"]


def _fractions(cls: TrafficClass) -> tuple[Fraction, Fraction]:
    """Per-class ``(rho, b)`` as exact rationals.

    ``Fraction(float)`` is exact (binary expansion), so the rational
    recurrence computes the *same* mathematical quantity the float
    modes approximate.
    """
    rho = Fraction(cls.alpha) / Fraction(cls.mu)
    b = Fraction(cls.beta) / Fraction(cls.mu)
    return rho, b


def _exact_phi(cls: TrafficClass, cap: int) -> list[Fraction]:
    """``Phi_r(k)`` as exact rationals, truncated where the rate hits 0.

    Matches the clamped model semantics (``lambda(k) = max(0, ...)``):
    for smooth classes whose float source count is infinitesimally off
    an integer, the closed-form negative-binomial series would carry a
    spurious non-terminating tail; the product form truncates it.
    """
    alpha = Fraction(cls.alpha)
    beta = Fraction(cls.beta)
    mu = Fraction(cls.mu)
    phis = [Fraction(1)]
    value = Fraction(1)
    for k in range(1, cap // cls.a + 1):
        rate = alpha + beta * (k - 1)
        if rate <= 0:
            break
        value *= rate / (k * mu)
        phis.append(value)
    return phis


def exact_q_table(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> list[list[Fraction]]:
    """The full grid ``Q(n1, n2)`` as exact rationals.

    Indexed ``table[n1][n2]``; entries with any negative coordinate are
    conceptually zero and simply absent.  Smooth (``beta < 0``) classes
    are folded in through the positive-term identity rather than the
    alternating ``V`` recursion, mirroring the float implementation —
    both for symmetry and for the truncation semantics of
    :func:`_exact_phi`.
    """
    classes = tuple(classes)
    if not classes:
        raise ConfigurationError("at least one traffic class is required")
    sweep = [c for c in classes if c.beta >= 0]
    folds = [c for c in classes if c.beta < 0]
    n1, n2 = dims.n1, dims.n2
    params = [_fractions(c) for c in sweep]
    classes, all_classes = tuple(sweep), classes

    q: list[list[Fraction]] = [
        [Fraction(0)] * (n2 + 1) for _ in range(n1 + 1)
    ]
    for m in range(n1 + 1):
        q[m][0] = Fraction(1, math.factorial(m))
    bursty = [r for r, c in enumerate(classes) if c.is_bursty]
    v: dict[int, list[list[Fraction]]] = {
        r: [[Fraction(0)] * (n2 + 1) for _ in range(n1 + 1)] for r in bursty
    }

    for col in range(1, n2 + 1):
        for row in range(n1 + 1):
            total = q[row][col - 1]
            for r, cls in enumerate(classes):
                a = cls.a
                rho, b = params[r]
                src = (
                    q[row - a][col - a]
                    if row >= a and col >= a
                    else Fraction(0)
                )
                if cls.is_poisson:
                    term = src
                else:
                    prev = (
                        v[r][row - a][col - a]
                        if row >= a and col >= a
                        else Fraction(0)
                    )
                    term = src + b * prev
                    v[r][row][col] = term
                total += a * rho * term
            q[row][col] = total / col

    for cls in folds:
        q = _fold_exact(q, dims, cls)
    return q


def _fold_exact(
    q: list[list[Fraction]], dims: SwitchDimensions, cls: TrafficClass
) -> list[list[Fraction]]:
    """Fold one smooth class: ``Q(n) = sum_k Phi(k) Q_rest(n - a k I)``."""
    phis = _exact_phi(cls, dims.capacity)
    a = cls.a
    out = [
        [Fraction(0)] * (dims.n2 + 1) for _ in range(dims.n1 + 1)
    ]
    for m1 in range(dims.n1 + 1):
        for m2 in range(dims.n2 + 1):
            total = Fraction(0)
            for k, phi in enumerate(phis):
                if k * a > m1 or k * a > m2:
                    break
                total += phi * q[m1 - k * a][m2 - k * a]
            out[m1][m2] = total
    return out


def solve_exact(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> PerformanceSolution:
    """Solve with exact rationals; measures converted to float at the end."""
    classes = tuple(classes)
    table = exact_q_table(dims, classes)
    h_grids = []
    for cls in classes:
        a = cls.a
        h = np.zeros((dims.n1 + 1, dims.n2 + 1))
        for m1 in range(a, dims.n1 + 1):
            for m2 in range(a, dims.n2 + 1):
                denom = table[m1][m2]
                if denom != 0:
                    h[m1, m2] = float(table[m1 - a][m2 - a] / denom)
        h_grids.append(h)
    def _log_fraction(value: Fraction) -> float:
        # log via numerator/denominator so huge rationals cannot
        # overflow the float conversion
        if value <= 0:
            return -math.inf
        return math.log(value.numerator) - math.log(value.denominator)

    log_q = np.array(
        [
            [_log_fraction(table[m1][m2]) for m2 in range(dims.n2 + 1)]
            for m1 in range(dims.n1 + 1)
        ]
    )

    # Stable concurrency grids for smooth classes (same identity as the
    # float solver; see repro.core.convolution).
    e_smooth: dict[int, np.ndarray] = {}
    for r, cls in enumerate(classes):
        if cls.beta >= 0:
            continue
        rest = [c for i, c in enumerate(classes) if i != r]
        if rest:
            q_rest = exact_q_table(dims, rest)
        else:
            q_rest = [
                [
                    Fraction(1, math.factorial(m1) * math.factorial(m2))
                    for m2 in range(dims.n2 + 1)
                ]
                for m1 in range(dims.n1 + 1)
            ]
        phis = _exact_phi(cls, dims.capacity)
        a = cls.a
        grid = np.zeros((dims.n1 + 1, dims.n2 + 1))
        for m1 in range(dims.n1 + 1):
            for m2 in range(dims.n2 + 1):
                total = Fraction(0)
                for k, phi in enumerate(phis):
                    if k * a > m1 or k * a > m2:
                        break
                    total += k * phi * q_rest[m1 - k * a][m2 - k * a]
                denom = table[m1][m2]
                if denom != 0:
                    grid[m1, m2] = float(total / denom)
        e_smooth[r] = grid

    return PerformanceSolution(
        dims=dims,
        classes=classes,
        h=tuple(h_grids),
        log_q=log_q,
        method="exact",
        e_smooth=e_smooth,
    )
