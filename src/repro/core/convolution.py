"""Algorithm 1: recursive computation of the normalization function.

The paper computes performance measures from the scaled normalization
function ``Q(N) = G(N)/(N1! N2!)`` via the recurrence (eqs. 8-10)

    ``Q(n) = [ Q(n - 1_i)
               + sum_{r in R1} a_r rho_r Q(n - a_r I)
               + sum_{r in R2} a_r rho_r V(n, r) ] / n_i``

with the auxiliary recursion (eq. 9)

    ``V(n, r) = Q(n - a_r I) + (beta_r/mu_r) V(n - a_r I, r)``

sweeping the ``(n1, n2)`` grid column by column in ``n2``.  ``Q`` of
any point with a negative coordinate is zero and ``Q(n1, 0) = 1/n1!``
(only the empty state fits).  Complexity is ``O(N1 N2 R)`` exactly as
the paper states.

The sweeps in this module are the *reference* implementations: a
scalar python loop over ``n2`` whose per-column updates go through the
generic signed-log helpers (:mod:`repro.core.logspace`) or per-cell
mantissa/exponent bookkeeping — easy to audit against the paper, but
not fast.  The performance path is :mod:`repro.core.kernels`, which
recomputes the same grids with whole-column NumPy operations (bitwise
identical for the ``log`` and ``float`` modes, tolerance-equivalent
with reference fallback for ``scaled``).  Select it per call with
``kernel="numpy"``, process-wide with ``REPRO_KERNELS=numpy`` /
:func:`repro.core.kernels.set_default_kernel`, or by method name
(``convolution-numpy`` etc.) through the registry.

Three numeric modes are provided:

``"log"`` (default)
    ``Q`` is carried as ``log Q`` with signed-log arithmetic for the
    alternating ``V`` sums of smooth (Bernoulli) classes.  Immune to
    overflow/underflow for any system size.
``"scaled"``
    The paper's Section 6 *dynamic scaling*, implemented at its logical
    limit: every cell carries a float64 mantissa and an integer binary
    exponent, i.e. the scaling factor ``omega`` is re-chosen on every
    step so neither overflow nor underflow can ever occur.  Since the
    measures only use ratios ``Q(N - a_r I)/Q(N)``, the scale factors
    cancel (Section 6's argument).
``"float"``
    The raw unscaled recurrence in float64, exactly as Algorithm 1
    reads before Section 6.  ``Q ~ 1/(n1! n2!)`` underflows around
    ``n1 + n2 ~ 300``, at which point this mode raises
    :class:`~repro.exceptions.OverflowInRecursionError` — the failure
    that motivates dynamic scaling (reproduced by
    ``benchmarks/bench_scaling.py``).

Stability note (beyond the paper).  For *smooth* (Bernoulli,
``beta < 0``) classes the ``V`` recursion is an **alternating** series
whose terms grow roughly like ``|beta/mu| * (N1-k)(N2-k)`` per step; as
soon as that factor exceeds one, the sum cancels catastrophically and
every floating-point representation (including the log domain) loses
all precision within a few chain steps.  The paper's own examples stay
in the stable regime (``|b| N^2 << 1``), but e.g. a 2-source smooth
class on a 32x32 switch is far outside it.  This module therefore
removes Bernoulli classes from the sweep entirely and *folds* them in
afterwards through the exact positive-term identity

    ``Q(N) = sum_k Phi_r(k) Q_rest(N - a_r k I)``

(``Phi_r(k) = |b|^k C(S, k) >= 0`` terminates at the source count
``S``), which is unconditionally stable.  Poisson and Pascal classes
have non-negative ``V`` terms and keep the paper's ``O(N1 N2 R)``
recursion.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..exceptions import ComputationError, ConfigurationError, OverflowInRecursionError
from .logspace import NEG_INF, signed_log_add, signed_log_scale
from .measures import PerformanceSolution
from .state import SwitchDimensions
from .traffic import TrafficClass

__all__ = ["solve_convolution", "log_q_grid"]

_MODES = ("log", "scaled", "float")


def _shift(column: np.ndarray, a: int, fill: float) -> np.ndarray:
    """Return ``out[n1] = column[n1 - a]`` with ``fill`` for ``n1 < a``."""
    out = np.full_like(column, fill)
    if a == 0:
        return column.copy()
    if a <= column.shape[0]:
        out[a:] = column[:-a]
    return out


def _validate(dims: SwitchDimensions, classes: Sequence[TrafficClass]) -> None:
    if not classes:
        raise ConfigurationError("at least one traffic class is required")
    for cls in classes:
        if cls.a <= dims.capacity:
            cls.validate_for(dims.n1, dims.n2)


# ----------------------------------------------------------------------
# Log-domain sweep (robust default)
# ----------------------------------------------------------------------


def _sweep_log(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> np.ndarray:
    n1, n2 = dims.n1, dims.n2
    lq = np.full((n1 + 1, n2 + 1), NEG_INF)
    lq[:, 0] = -np.array([math.lgamma(m + 1) for m in range(n1 + 1)])

    bursty = [r for r, c in enumerate(classes) if c.is_bursty]
    lv = {r: np.full((n1 + 1, n2 + 1), NEG_INF) for r in bursty}
    sv = {r: np.zeros((n1 + 1, n2 + 1), dtype=int) for r in bursty}

    for col in range(1, n2 + 1):
        acc_l = lq[:, col - 1].copy()
        acc_s = (acc_l > NEG_INF).astype(int)
        for r, cls in enumerate(classes):
            a = cls.a
            if col >= a:
                src = _shift(lq[:, col - a], a, NEG_INF)
            else:
                src = np.full(n1 + 1, NEG_INF)
            src_sign = (src > NEG_INF).astype(int)
            if cls.is_poisson:
                term_l, term_s = src, src_sign
            else:
                if col >= a:
                    prev_l = _shift(lv[r][:, col - a], a, NEG_INF)
                    prev_s = _shift(
                        sv[r][:, col - a].astype(float), a, 0.0
                    ).astype(int)
                else:
                    prev_l = np.full(n1 + 1, NEG_INF)
                    prev_s = np.zeros(n1 + 1, dtype=int)
                scaled_l, scaled_s = signed_log_scale(prev_l, prev_s, cls.b)
                v_l, v_s = signed_log_add(src, src_sign, scaled_l, scaled_s)
                lv[r][:, col] = v_l
                sv[r][:, col] = v_s
                term_l, term_s = v_l, v_s
            factor = cls.a * cls.rho
            if factor > 0.0:
                term_l, term_s = signed_log_scale(term_l, term_s, factor)
                acc_l, acc_s = signed_log_add(acc_l, acc_s, term_l, term_s)
        if np.any(acc_s <= 0):
            raise ComputationError(
                "Q recursion produced a non-positive value at column "
                f"n2={col}; the Bernoulli parameters likely admit a "
                "negative arrival rate inside the state space"
            )
        lq[:, col] = acc_l - math.log(col)
    return lq


# ----------------------------------------------------------------------
# Mantissa/exponent sweep (paper Section 6 dynamic scaling)
# ----------------------------------------------------------------------


def _sweep_scaled(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> np.ndarray:
    """Dynamic-scaling sweep; returns the grid of ``log Q``.

    Each cell is ``man * 2**ex`` with ``man`` float64 and ``ex`` a wide
    integer exponent.  Sums align terms to the largest exponent via
    ``ldexp`` (terms more than ~1000 binary orders smaller vanish,
    which is far below float64 resolution anyway).
    """
    n1, n2 = dims.n1, dims.n2
    man = np.zeros((n1 + 1, n2 + 1))
    ex = np.zeros((n1 + 1, n2 + 1), dtype=np.int64)
    for m in range(n1 + 1):
        lg = -math.lgamma(m + 1)
        e = int(math.floor(lg / math.log(2.0)))
        man[m, 0] = math.exp(lg - e * math.log(2.0))
        ex[m, 0] = e

    bursty = [r for r, c in enumerate(classes) if c.is_bursty]
    vman = {r: np.zeros((n1 + 1, n2 + 1)) for r in bursty}
    vex = {r: np.zeros((n1 + 1, n2 + 1), dtype=np.int64) for r in bursty}

    def add_terms(
        terms: list[tuple[np.ndarray, np.ndarray]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sum (mantissa, exponent) arrays; re-normalize the result."""
        top = terms[0][1].copy()
        for _, e in terms[1:]:
            np.maximum(top, e, out=top)
        total = np.zeros_like(terms[0][0])
        for m, e in terms:
            shift = np.clip(e - top, -1060, 0)
            total += np.ldexp(m, shift.astype(np.int64))
        out_man, out_ex = np.frexp(total)
        out_ex = out_ex.astype(np.int64) + top
        out_ex[total == 0.0] = 0
        return out_man, out_ex

    for col in range(1, n2 + 1):
        terms = [(man[:, col - 1].copy(), ex[:, col - 1].copy())]
        for r, cls in enumerate(classes):
            a = cls.a
            if col >= a:
                src_m = _shift(man[:, col - a], a, 0.0)
                src_e = _shift(
                    ex[:, col - a].astype(float), a, 0.0
                ).astype(np.int64)
            else:
                src_m = np.zeros(n1 + 1)
                src_e = np.zeros(n1 + 1, dtype=np.int64)
            if cls.is_poisson:
                term_m, term_e = src_m, src_e
            else:
                if col >= a:
                    pm = _shift(vman[r][:, col - a], a, 0.0) * cls.b
                    pe = _shift(
                        vex[r][:, col - a].astype(float), a, 0.0
                    ).astype(np.int64)
                else:
                    pm = np.zeros(n1 + 1)
                    pe = np.zeros(n1 + 1, dtype=np.int64)
                term_m, term_e = add_terms([(src_m, src_e), (pm, pe)])
                vman[r][:, col] = term_m
                vex[r][:, col] = term_e
            factor = cls.a * cls.rho
            if factor > 0.0:
                terms.append((term_m * factor, term_e))
        total_m, total_e = add_terms(terms)
        if np.any(total_m <= 0.0):
            raise ComputationError(
                f"Q recursion produced a non-positive value at column n2={col}"
            )
        man[:, col] = total_m / col
        ex[:, col] = total_e

    with np.errstate(divide="ignore"):
        lq = np.where(
            man > 0.0,
            np.log(np.maximum(man, 1e-320)) + ex * math.log(2.0),
            NEG_INF,
        )
    return lq


# ----------------------------------------------------------------------
# Raw float sweep (no scaling; ablation baseline)
# ----------------------------------------------------------------------


def _sweep_float(
    dims: SwitchDimensions, classes: Sequence[TrafficClass]
) -> np.ndarray:
    n1, n2 = dims.n1, dims.n2
    q = np.zeros((n1 + 1, n2 + 1))
    for m in range(n1 + 1):
        lg = -math.lgamma(m + 1)
        if lg < math.log(5e-324):
            raise OverflowInRecursionError(
                f"Q({m}, 0) = 1/{m}! underflows float64; "
                "use mode='scaled' or mode='log'"
            )
        q[m, 0] = math.exp(lg)
    bursty = [r for r, c in enumerate(classes) if c.is_bursty]
    v = {r: np.zeros((n1 + 1, n2 + 1)) for r in bursty}

    for col in range(1, n2 + 1):
        total = q[:, col - 1].copy()
        for r, cls in enumerate(classes):
            a = cls.a
            src = _shift(q[:, col - a], a, 0.0) if col >= a else np.zeros(n1 + 1)
            if cls.is_poisson:
                term = src
            else:
                prev = (
                    _shift(v[r][:, col - a], a, 0.0)
                    if col >= a
                    else np.zeros(n1 + 1)
                )
                term = src + cls.b * prev
                v[r][:, col] = term
            total += cls.a * cls.rho * term
        total /= col
        if not np.all(np.isfinite(total)):
            raise OverflowInRecursionError(
                f"unscaled Algorithm 1 overflowed at column n2={col}"
            )
        if np.any(total[: min(col, n1) + 1] == 0.0):
            raise OverflowInRecursionError(
                f"unscaled Algorithm 1 underflowed to zero at column n2={col}; "
                "use mode='scaled' or mode='log'"
            )
        q[:, col] = total

    with np.errstate(divide="ignore"):
        return np.where(q > 0.0, np.log(np.where(q > 0.0, q, 1.0)), NEG_INF)


# ----------------------------------------------------------------------
# Smooth-class folding (stability fix; see module docstring)
# ----------------------------------------------------------------------


def _fold_log(
    lq: np.ndarray, dims: SwitchDimensions, cls: TrafficClass
) -> np.ndarray:
    """Fold one smooth class into a log-domain grid (positive terms)."""
    from .productform import log_phi

    a = cls.a
    out = lq.copy()  # k = 0 term (log Phi(0) = 0)
    k = 1
    while k * a <= dims.capacity:
        logphi = log_phi(cls, k)
        if logphi == NEG_INF:
            break
        shift = k * a
        term = np.full_like(lq, NEG_INF)
        term[shift:, shift:] = lq[:-shift, :-shift] + logphi
        out = np.logaddexp(out, term)
        k += 1
    return out


def _fold_float(
    lq: np.ndarray, dims: SwitchDimensions, cls: TrafficClass
) -> np.ndarray:
    """Float-domain fold for mode='float' (keeps its raw-float spirit)."""
    from .productform import log_phi

    with np.errstate(over="raise"):
        q = np.where(lq > NEG_INF, np.exp(lq), 0.0)
        out = q.copy()
        a = cls.a
        k = 1
        while k * a <= dims.capacity:
            logphi = log_phi(cls, k)
            if logphi == NEG_INF:
                break
            shift = k * a
            out[shift:, shift:] += q[:-shift, :-shift] * math.exp(logphi)
            k += 1
    if not np.all(np.isfinite(out)):
        raise OverflowInRecursionError(
            "unscaled fold of a smooth class overflowed; use "
            "mode='scaled' or mode='log'"
        )
    with np.errstate(divide="ignore"):
        return np.where(out > 0.0, np.log(np.where(out > 0.0, out, 1.0)), NEG_INF)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def _sweep_and_fold(
    dims: SwitchDimensions,
    sweep_classes: Sequence[TrafficClass],
    mode: str,
    kernel: str | None,
):
    """Pick the sweep for ``(mode, kernel)``; returns ``(base, fold)``."""
    from .kernels import resolve_kernel, sweep_float, sweep_log, sweep_scaled

    family = resolve_kernel(kernel)
    sweeps = {
        ("log", "python"): _sweep_log,
        ("scaled", "python"): _sweep_scaled,
        ("float", "python"): _sweep_float,
        ("log", "numpy"): sweep_log,
        ("scaled", "numpy"): sweep_scaled,
        ("float", "numpy"): sweep_float,
    }
    folds = {"log": _fold_log, "scaled": _fold_log, "float": _fold_float}
    if mode not in folds:
        raise ConfigurationError(
            f"unknown mode {mode!r}; expected one of {_MODES}"
        )
    return sweeps[(mode, family)](dims, sweep_classes), folds[mode]


def log_q_grid(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    mode: str = "log",
    kernel: str | None = None,
) -> np.ndarray:
    """Grid of ``log Q(n1, n2)`` for ``0 <= n1 <= N1, 0 <= n2 <= N2``.

    Smooth (Bernoulli) classes are folded in through the positive-term
    identity rather than the alternating ``V`` recursion — see the
    module docstring's stability note.  ``kernel`` selects the sweep
    implementation (``None`` -> the process default, see
    :mod:`repro.core.kernels`).
    """
    _validate(dims, classes)
    sweep_classes = [c for c in classes if c.beta >= 0]
    fold_classes = [c for c in classes if c.beta < 0]
    lq, fold = _sweep_and_fold(dims, sweep_classes, mode, kernel)
    for cls in fold_classes:
        lq = fold(lq, dims, cls)
    return lq


def _smooth_concurrency_grid(
    lq: np.ndarray,
    lq_rest: np.ndarray,
    dims: SwitchDimensions,
    cls: TrafficClass,
) -> np.ndarray:
    """Stable concurrency grid for one smooth class.

    The recursive ``E_r(N) = H_r(N)(rho + b E_r(N - a I))`` inherits
    the alternating-series instability for ``beta < 0`` (the bracket
    cancels), so smooth-class concurrency is evaluated by the direct
    positive sum

        ``E_r(N) = sum_k k Phi_r(k) Q_rest(N - a k I) / Q(N)``

    where ``Q_rest`` excludes class ``r``.
    """
    from .productform import log_phi

    a = cls.a
    acc = np.full_like(lq, NEG_INF)
    k = 1
    while k * a <= dims.capacity:
        logphi = log_phi(cls, k)
        if logphi == NEG_INF:
            break
        shift = k * a
        term = np.full_like(lq, NEG_INF)
        term[shift:, shift:] = (
            lq_rest[:-shift, :-shift] + logphi + math.log(k)
        )
        acc = np.logaddexp(acc, term)
        k += 1
    with np.errstate(invalid="ignore"):
        grid = np.exp(acc - lq)
    grid[~np.isfinite(grid)] = 0.0
    return grid


def solve_convolution(
    dims: SwitchDimensions,
    classes: Sequence[TrafficClass],
    mode: str = "log",
    kernel: str | None = None,
) -> PerformanceSolution:
    """Solve the model with Algorithm 1 and return all measures.

    Parameters
    ----------
    dims, classes:
        The switch and its traffic mix.
    mode:
        ``"log"`` (default), ``"scaled"`` (Section 6 dynamic scaling),
        or ``"float"`` (raw recurrence — raises on overflow/underflow).
    kernel:
        ``"python"`` (reference sweeps), ``"numpy"`` (vectorized
        kernels, see :mod:`repro.core.kernels`) or ``None`` for the
        process-wide default.  The solution label stays
        ``convolution/<mode>`` either way — the kernel is an
        implementation detail of the same algorithm, recorded on the
        solution as ``solution.kernel``.
    """
    classes = tuple(classes)
    _validate(dims, classes)
    sweep_classes = [c for c in classes if c.beta >= 0]
    fold_classes = [(r, c) for r, c in enumerate(classes) if c.beta < 0]
    base, fold = _sweep_and_fold(dims, sweep_classes, mode, kernel)
    lq = base
    for _, cls in fold_classes:
        lq = fold(lq, dims, cls)

    h_grids = []
    for cls in classes:
        a = cls.a
        h = np.zeros((dims.n1 + 1, dims.n2 + 1))
        if a <= dims.n1 and a <= dims.n2:
            h[a:, a:] = np.exp(lq[:-a, :-a] - lq[a:, a:])
            h[a:, a:][~np.isfinite(h[a:, a:])] = 0.0
        h_grids.append(h)

    # Stable concurrency grids for smooth classes (see helper).
    e_smooth: dict[int, np.ndarray] = {}
    for r, cls in fold_classes:
        lq_rest = base
        for other_r, other in fold_classes:
            if other_r != r:
                lq_rest = fold(lq_rest, dims, other)
        e_smooth[r] = _smooth_concurrency_grid(lq, lq_rest, dims, cls)

    solution = PerformanceSolution(
        dims=dims,
        classes=classes,
        h=tuple(h_grids),
        log_q=lq,
        method=f"convolution/{mode}",
        e_smooth=e_smooth,
    )
    from .kernels import resolve_kernel

    solution.kernel = resolve_kernel(kernel)
    return solution
