"""Tests for the Erlang/Engset baselines and the crossbar limit theorems."""

from __future__ import annotations

import math

import pytest

from repro.baselines.erlang import (
    engset_blocking,
    engset_distribution,
    engset_mean_busy,
    erlang_b,
)
from repro.core.moments import occupancy_pmf
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError, InvalidParameterError


class TestErlangB:
    def test_known_value(self):
        # Classic table entry: 5 servers, 3 erlangs -> 0.110054...
        assert erlang_b(5, 3.0) == pytest.approx(0.110054, rel=1e-4)

    def test_zero_servers_blocks_everything(self):
        assert erlang_b(0, 2.0) == 1.0

    def test_zero_load_never_blocks(self):
        assert erlang_b(10, 0.0) == 0.0

    def test_monotone_in_load(self):
        assert erlang_b(10, 8.0) > erlang_b(10, 4.0)

    def test_monotone_in_servers(self):
        assert erlang_b(12, 8.0) < erlang_b(8, 8.0)

    def test_matches_direct_formula_small(self):
        # B = (A^c/c!)/sum_{k<=c} A^k/k!
        a, c = 2.5, 4
        num = a**c / math.factorial(c)
        den = sum(a**k / math.factorial(k) for k in range(c + 1))
        assert erlang_b(c, a) == pytest.approx(num / den, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            erlang_b(-1, 1.0)
        with pytest.raises(InvalidParameterError):
            erlang_b(3, -0.5)


class TestEngset:
    def test_distribution_is_binomial_without_truncation(self):
        # S sources, load a each, servers >= S: pi(m) = C(S,m) p^m (1-p)^(S-m)
        s, a = 5, 0.4
        p = a / (1.0 + a)
        pmf = engset_distribution(s, a)
        for m, value in enumerate(pmf):
            expected = math.comb(s, m) * p**m * (1 - p) ** (s - m)
            assert value == pytest.approx(expected, rel=1e-12)

    def test_mean_busy(self):
        s, a = 6, 0.5
        assert engset_mean_busy(s, a) == pytest.approx(
            s * (a / (1 + a)), rel=1e-12
        )

    def test_truncation_reduces_mean(self):
        assert engset_mean_busy(6, 1.0, servers=2) < engset_mean_busy(6, 1.0)

    def test_call_congestion_zero_when_servers_cover_sources(self):
        assert engset_blocking(4, 0.7, servers=4) == 0.0

    def test_call_congestion_positive_when_truncated(self):
        assert engset_blocking(8, 0.5, servers=3) > 0.0

    def test_engset_converges_to_erlang_b(self):
        """Sources -> infinity at fixed total load A = S*a/(per-idle):
        call congestion -> Erlang B."""
        servers, total = 5, 3.0
        approxes = []
        for s in (10, 100, 1000):
            # choose per-source load so total offered ~ total erlangs
            a = total / (s - total)
            approxes.append(engset_blocking(s, a, servers))
        target = erlang_b(servers, total)
        errors = [abs(x - target) for x in approxes]
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 5e-3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            engset_distribution(0, 0.5)
        with pytest.raises(InvalidParameterError):
            engset_distribution(3, -0.1)
        with pytest.raises(ConfigurationError):
            engset_distribution(3, 0.5, servers=-1)


class TestCrossbarLimits:
    def test_crossbar_occupancy_converges_to_engset(self):
        """N1 = c fixed, N2 -> infinity at per-input load Lambda:
        the busy-input count converges to Engset(c, Lambda)."""
        c, lam = 4, 0.5
        target = engset_distribution(c, lam)
        worst_errors = []
        for n2 in (8, 64, 512):
            dims = SwitchDimensions(c, n2)
            pmf = occupancy_pmf(dims, [TrafficClass.poisson(lam / n2)])
            worst_errors.append(
                max(abs(a - b) for a, b in zip(pmf, target))
            )
        assert worst_errors[0] > worst_errors[1] > worst_errors[2]
        assert worst_errors[2] < 1e-3

    def test_crossbar_mean_converges_to_engset_mean(self):
        c, lam = 3, 0.8
        n2 = 1024
        dims = SwitchDimensions(c, n2)
        from repro.core.convolution import solve_convolution

        solution = solve_convolution(
            dims, [TrafficClass.poisson(lam / n2)]
        )
        assert solution.concurrency(0) == pytest.approx(
            engset_mean_busy(c, lam), rel=2e-3
        )
