"""Fault injection in the simulator and the hardened runner."""

from __future__ import annotations

import json

import pytest

from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError, SimulationError
from repro.robust.faults import (
    INPUT,
    OUTPUT,
    REPAIR,
    FailureMask,
    FaultModel,
    ScheduledFault,
)
from repro.sim import runner as runner_module
from repro.sim.crossbar import AsynchronousCrossbarSimulator
from repro.sim.runner import (
    _record_from_json,
    _record_to_json,
    run_replications,
)


@pytest.fixture
def dims() -> SwitchDimensions:
    return SwitchDimensions(4, 4)


@pytest.fixture
def classes() -> list[TrafficClass]:
    return [TrafficClass.poisson(0.5, name="poisson")]


class TestSimulatorFaults:
    def test_healthy_model_changes_nothing(self, dims, classes):
        plain = AsynchronousCrossbarSimulator(dims, classes, seed=9)
        masked = AsynchronousCrossbarSimulator(
            dims, classes, seed=9, faults=FailureMask.none()
        )
        assert plain.run(300.0, warmup=30.0) == masked.run(300.0, warmup=30.0)

    def test_static_mask_reduces_live_ports_exactly(self, dims, classes):
        mask = FailureMask.from_ports(inputs=[0], outputs=[1, 2])
        record = AsynchronousCrossbarSimulator(
            dims, classes, seed=1, faults=mask
        ).run(200.0, warmup=20.0, check_invariants=True)
        assert record.mean_live_inputs == pytest.approx(3.0)
        assert record.mean_live_outputs == pytest.approx(2.0)
        assert record.failures == 0
        assert all(c.interrupted == 0 for c in record.classes)

    def test_total_input_failure_blocks_everything(self, dims, classes):
        mask = FailureMask.from_ports(inputs=range(4))
        record = AsynchronousCrossbarSimulator(
            dims, classes, seed=2, faults=mask
        ).run(100.0, check_invariants=True)
        assert record.classes[0].offered > 0
        assert record.classes[0].accepted == 0
        assert record.mean_occupancy == 0.0

    def test_scheduled_failure_clears_connections(self, dims):
        # Heavy load keeps every port busy, so killing one mid-run must
        # tear down at least one in-flight connection.
        classes = [TrafficClass.poisson(2.0, name="hot")]
        model = FaultModel(
            schedule=[ScheduledFault(time=50.0, side=INPUT, port=0)]
        )
        record = AsynchronousCrossbarSimulator(
            dims, classes, seed=3, faults=model
        ).run(100.0, check_invariants=True)
        assert record.failures == 1
        assert record.repairs == 0
        assert record.classes[0].interrupted >= 1

    def test_scheduled_repair_restores_capacity(self, dims, classes):
        model = FaultModel(
            schedule=[
                ScheduledFault(time=10.0, side=OUTPUT, port=3),
                ScheduledFault(time=20.0, side=OUTPUT, port=3, kind=REPAIR),
            ]
        )
        record = AsynchronousCrossbarSimulator(
            dims, classes, seed=4, faults=model
        ).run(30.0, check_invariants=True)
        assert record.failures == 1
        assert record.repairs == 1
        # Down exactly 10 of 30 time units on one of four outputs.
        assert record.mean_live_outputs == pytest.approx(
            (4.0 * 20.0 + 3.0 * 10.0) / 30.0
        )
        assert record.mean_live_inputs == pytest.approx(4.0)

    def test_duplicate_scheduled_failure_is_noop(self, dims, classes):
        model = FaultModel(
            schedule=[
                ScheduledFault(time=10.0, side=INPUT, port=1),
                ScheduledFault(time=15.0, side=INPUT, port=1),
            ]
        )
        record = AsynchronousCrossbarSimulator(
            dims, classes, seed=5, faults=model
        ).run(30.0, check_invariants=True)
        assert record.failures == 1

    def test_stochastic_faults_alternate_and_keep_invariants(self, dims):
        classes = [TrafficClass.poisson(1.0, name="hot")]
        model = FaultModel.exponential(mtbf=20.0, mttr=2.0)
        record = AsynchronousCrossbarSimulator(
            dims, classes, seed=6, faults=model
        ).run(500.0, warmup=50.0, check_invariants=True)
        assert record.failures > 0
        assert record.repairs > 0
        assert abs(record.failures - record.repairs) <= 8  # one per port
        assert 0.0 < record.mean_live_inputs < 4.0
        # availability = 20/22; time-averaged live ports should be near
        # 4 * availability.
        assert record.mean_live_inputs == pytest.approx(
            4.0 * 20.0 / 22.0, rel=0.1
        )

    def test_oblivious_routing_clears_requests_at_dead_ports(self, dims):
        classes = [TrafficClass.poisson(0.5, name="poisson")]
        mask = FailureMask.from_ports(inputs=[0, 1])
        reroute = AsynchronousCrossbarSimulator(
            dims, classes, seed=7, faults=mask, routing="reroute"
        ).run(400.0, warmup=40.0)
        oblivious = AsynchronousCrossbarSimulator(
            dims, classes, seed=7, faults=mask, routing="oblivious"
        ).run(400.0, warmup=40.0)
        # Oblivious sources waste half their requests on dead inputs, so
        # they see strictly worse acceptance than rerouting sources.
        assert (
            oblivious.classes[0].acceptance_ratio
            < reroute.classes[0].acceptance_ratio
        )

    def test_rejects_bad_routing(self, dims, classes):
        with pytest.raises(ConfigurationError):
            AsynchronousCrossbarSimulator(
                dims, classes, routing="telepathic"
            )

    def test_rejects_mask_outside_switch(self, dims, classes):
        with pytest.raises(ConfigurationError):
            AsynchronousCrossbarSimulator(
                dims, classes, faults=FailureMask.from_ports(inputs=[4])
            )


class FlakySimulator(AsynchronousCrossbarSimulator):
    """Raises SimulationError whenever built with a poisoned seed."""

    poisoned: set[int] = set()
    seeds_run: list[int] = []

    def __init__(self, dims, classes, **kwargs):
        self._test_seed = kwargs.get("seed")
        super().__init__(dims, classes, **kwargs)

    def run(self, *args, **kwargs):
        FlakySimulator.seeds_run.append(self._test_seed)
        if self._test_seed in FlakySimulator.poisoned:
            raise SimulationError("injected flake")
        return super().run(*args, **kwargs)


class TestRunnerHardening:
    def test_retry_with_reseed(self, dims, classes, monkeypatch):
        FlakySimulator.poisoned = {3}  # replication 0's base seed
        FlakySimulator.seeds_run = []
        monkeypatch.setattr(
            runner_module, "AsynchronousCrossbarSimulator", FlakySimulator
        )
        summary = run_replications(
            dims, classes, horizon=50.0, replications=2, seed=3,
            max_retries=2,
        )
        assert summary.replications == 2
        assert FlakySimulator.seeds_run == [3, 3 + 1_000_003, 4]

    def test_exhausted_retries_propagate(self, dims, classes, monkeypatch):
        FlakySimulator.poisoned = {3, 3 + 1_000_003}
        FlakySimulator.seeds_run = []
        monkeypatch.setattr(
            runner_module, "AsynchronousCrossbarSimulator", FlakySimulator
        )
        with pytest.raises(SimulationError):
            run_replications(
                dims, classes, horizon=50.0, replications=1, seed=3,
                max_retries=1,
            )
        assert FlakySimulator.seeds_run == [3, 3 + 1_000_003]

    def test_rejects_negative_max_retries(self, dims, classes):
        with pytest.raises(ConfigurationError):
            run_replications(
                dims, classes, horizon=50.0, max_retries=-1
            )

    def test_checkpoint_resumes_without_recomputing(
        self, dims, classes, monkeypatch, tmp_path
    ):
        checkpoint = tmp_path / "reps.jsonl"
        first = run_replications(
            dims, classes, horizon=50.0, replications=3, seed=0,
            checkpoint=checkpoint,
        )
        assert len(checkpoint.read_text().splitlines()) == 3

        FlakySimulator.poisoned = set()
        FlakySimulator.seeds_run = []
        monkeypatch.setattr(
            runner_module, "AsynchronousCrossbarSimulator", FlakySimulator
        )
        second = run_replications(
            dims, classes, horizon=50.0, replications=5, seed=0,
            checkpoint=checkpoint,
        )
        # Only the two new replications were simulated.
        assert FlakySimulator.seeds_run == [3, 4]
        assert second.records[:3] == first.records
        assert len(checkpoint.read_text().splitlines()) == 5

    def test_checkpoint_rejects_mismatched_experiment(
        self, dims, classes, tmp_path
    ):
        checkpoint = tmp_path / "reps.jsonl"
        run_replications(
            dims, classes, horizon=50.0, replications=1,
            checkpoint=checkpoint,
        )
        with pytest.raises(ConfigurationError):
            run_replications(
                dims, classes, horizon=60.0, replications=1,
                checkpoint=checkpoint,
            )

    def test_record_json_round_trip(self, dims, classes):
        mask = FailureMask.from_ports(inputs=[0])
        record = AsynchronousCrossbarSimulator(
            dims, classes, seed=8, faults=mask
        ).run(100.0, warmup=10.0)
        payload = json.loads(json.dumps(_record_to_json(record)))
        assert _record_from_json(payload) == record

    def test_faults_passthrough_matches_direct_simulation(
        self, dims, classes
    ):
        mask = FailureMask.from_ports(outputs=[2])
        summary = run_replications(
            dims, classes, horizon=100.0, replications=2, seed=1,
            faults=mask, routing="oblivious",
        )
        direct = AsynchronousCrossbarSimulator(
            dims, classes, seed=1, faults=mask, routing="oblivious"
        ).run(100.0)
        assert summary.records[0] == direct
