"""The engine's fault-tolerance layer: breaker, retries, deadlines,
hedging, failure envelopes, and disk-cache hardening."""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.api import SolveRequest, solve_many
from repro.core.traffic import TrafficClass
from repro.engine import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BatchSolver,
    CircuitBreaker,
    DiskCache,
    EngineConfig,
    FailedResult,
    TaskDeadlineError,
)
from repro.engine.batch import _call_with_deadline, _deterministic_backoff
from repro.engine.chaos import ALL_ATTEMPTS, ChaosFault, FaultPlan
from repro.exceptions import ConfigurationError
from repro.methods import SolveMethod


@pytest.fixture
def classes():
    return (
        TrafficClass.poisson(0.03, name="data"),
        TrafficClass(alpha=0.01, beta=0.005, name="video"),
    )


def fresh_engine(**overrides) -> BatchSolver:
    return BatchSolver(EngineConfig(**overrides))


def mva_requests(classes, sizes):
    """MVA requests are never grid-grouped: each is one solve task."""
    return [
        SolveRequest.square(n, classes, method=SolveMethod.MVA)
        for n in sizes
    ]


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ----------------------------------------------------------------------
# Circuit breaker state machine
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure("io")
        assert breaker.state == STATE_CLOSED
        breaker.record_failure("io")
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 1
        assert not breaker.allow()
        assert breaker.rejections == 1

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown=10.0, clock=clock
        )
        breaker.record_failure("disk full")
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()  # the probe
        assert breaker.state == STATE_HALF_OPEN
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.probes == 1

    def test_half_open_probe_reopens_on_failure(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure("still broken")
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 2
        # The cooldown restarted at the failed probe.
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()

    def test_transitions_are_recorded(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown=1.0, clock=clock
        )
        breaker.record_failure("io")
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        states = [(e.from_state, e.to_state) for e in breaker.events]
        assert states == [
            (STATE_CLOSED, STATE_OPEN),
            (STATE_OPEN, STATE_HALF_OPEN),
            (STATE_HALF_OPEN, STATE_CLOSED),
        ]

    def test_reset_forces_closed(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_snapshot_shape(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == STATE_OPEN
        assert snap["trips"] == 1
        assert snap["failures"] == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown=-1.0)


# ----------------------------------------------------------------------
# Backoff + deadline primitives
# ----------------------------------------------------------------------


class TestBackoff:
    def test_deterministic(self):
        a = _deterministic_backoff("key", 1, 0.1, 2.0)
        b = _deterministic_backoff("key", 1, 0.1, 2.0)
        assert a == b

    def test_jitter_within_half_to_full(self):
        for retry in (1, 2, 3):
            delay = _deterministic_backoff("key", retry, 0.1, 100.0)
            nominal = 0.1 * 2.0 ** (retry - 1)
            assert 0.5 * nominal <= delay <= nominal

    def test_cap_and_disabled(self):
        assert _deterministic_backoff("key", 10, 0.1, 0.5) == 0.5
        assert _deterministic_backoff("key", 0, 0.1, 2.0) == 0.0
        assert _deterministic_backoff("key", 1, 0.0, 2.0) == 0.0

    def test_varies_across_keys(self):
        delays = {
            _deterministic_backoff(f"key{i}", 1, 0.1, 2.0)
            for i in range(8)
        }
        assert len(delays) > 1


class TestCallWithDeadline:
    def test_result_passes_through(self):
        assert _call_with_deadline(lambda: 42, 5.0, name="t") == 42

    def test_exception_passes_through(self):
        with pytest.raises(ValueError):
            _call_with_deadline(
                lambda: (_ for _ in ()).throw(ValueError("boom")),
                5.0,
                name="t",
            )

    def test_timeout_raises_and_thread_is_daemon(self):
        release = threading.Event()
        with pytest.raises(TaskDeadlineError):
            _call_with_deadline(
                lambda: release.wait(30.0), 0.05, name="stuck"
            )
        stuck = [
            t for t in threading.enumerate()
            if t.name == "engine-stuck"
        ]
        assert stuck, "abandoned worker thread should still be alive"
        assert all(t.daemon for t in stuck)
        release.set()


# ----------------------------------------------------------------------
# Supervised batches: retries, deadlines, hedging, failure envelopes
# ----------------------------------------------------------------------


class TestSupervisedBatches:
    def test_transient_error_is_retried_serial(self, classes):
        chaos = FaultPlan(
            faults=(ChaosFault("transient-error", task=1, attempt=0),)
        )
        engine = fresh_engine(chaos=chaos)
        requests = mva_requests(classes, [3, 4, 5])
        clean = fresh_engine().evaluate_many(requests, parallel=False)
        results = engine.evaluate_many(requests, parallel=False)
        assert results == clean
        metrics = engine.last_metrics
        assert metrics.retries >= 1
        assert metrics.failed == 0

    def test_deadline_timeout_is_retried_serial(self, classes):
        chaos = FaultPlan(
            faults=(
                ChaosFault("delay", task=0, attempt=0, duration=1.0),
            )
        )
        engine = fresh_engine(chaos=chaos, task_deadline=0.2)
        requests = mva_requests(classes, [3, 4])
        clean = fresh_engine().evaluate_many(requests, parallel=False)
        results = engine.evaluate_many(requests, parallel=False)
        assert results == clean
        metrics = engine.last_metrics
        assert metrics.timeouts >= 1
        assert metrics.retries >= 1

    def test_permanent_failure_yields_failed_result(self, classes):
        chaos = FaultPlan(
            faults=(
                ChaosFault(
                    "transient-error", task=1, attempt=ALL_ATTEMPTS
                ),
            )
        )
        engine = fresh_engine(chaos=chaos, max_retries=1)
        requests = mva_requests(classes, [3, 4, 5])
        results = engine.evaluate_many(requests, parallel=False)
        assert not getattr(results[0], "failed", False)
        assert not getattr(results[2], "failed", False)
        failure = results[1]
        assert isinstance(failure, FailedResult)
        assert failure.error_type == "OSError"
        assert "chaos" in failure.error_message
        # 1 original + 1 retry, all recorded
        assert len(failure.attempts) == 2
        assert [a.outcome for a in failure.attempts] == ["error", "error"]
        assert engine.last_metrics.failed == 1
        payload = json.dumps(failure.to_dict())
        assert "transient" in payload

    def test_strict_mode_reraises(self, classes):
        chaos = FaultPlan(
            faults=(
                ChaosFault(
                    "transient-error", task=0, attempt=ALL_ATTEMPTS
                ),
            )
        )
        engine = fresh_engine(chaos=chaos, max_retries=0)
        requests = mva_requests(classes, [3, 4])
        with pytest.raises(OSError):
            engine.evaluate_many(requests, parallel=False, strict=True)

    def test_strict_batch_config_default(self, classes):
        chaos = FaultPlan(
            faults=(
                ChaosFault(
                    "transient-error", task=0, attempt=ALL_ATTEMPTS
                ),
            )
        )
        engine = fresh_engine(
            chaos=chaos, max_retries=0, strict_batch=True
        )
        with pytest.raises(OSError):
            engine.evaluate_many(
                mva_requests(classes, [3, 4]), parallel=False
            )

    def test_solve_many_strict_passthrough(self, classes):
        chaos = FaultPlan(
            faults=(
                ChaosFault(
                    "transient-error", task=0, attempt=ALL_ATTEMPTS
                ),
            )
        )
        engine = fresh_engine(chaos=chaos, max_retries=0)
        requests = mva_requests(classes, [3, 4])
        results = solve_many(requests, engine=engine, parallel=False)
        assert isinstance(results[0], FailedResult)
        with pytest.raises(OSError):
            solve_many(
                requests, engine=engine, parallel=False, strict=True
            )

    def test_hedging_launches_and_wins(self, classes):
        chaos = FaultPlan(
            faults=(
                ChaosFault("delay", task=0, attempt=0, duration=3.0),
            )
        )
        engine = fresh_engine(
            chaos=chaos, hedge_after=0.2, processes=2
        )
        requests = mva_requests(classes, [3, 4])
        clean = fresh_engine().evaluate_many(requests, parallel=False)
        results = engine.evaluate_many(requests, parallel=True)
        assert results == clean
        metrics = engine.last_metrics
        assert metrics.hedges >= 1
        assert metrics.hedges_won >= 1
        assert metrics.failed == 0

    def test_unsupervised_config_uses_plain_fanout(self, classes):
        engine = fresh_engine(max_retries=0, processes=2)
        assert not engine.config.supervised
        requests = mva_requests(classes, [3, 4, 5, 6])
        clean = fresh_engine().evaluate_many(requests, parallel=False)
        results = engine.evaluate_many(requests, parallel=True)
        # SolveResult equality ignores elapsed/from_cache, so this is
        # the byte-identity claim for the numbers.
        assert results == clean


# ----------------------------------------------------------------------
# Disk-cache hardening: breaker wiring, swallowed writes, tmp sweep
# ----------------------------------------------------------------------


def _deny_hook(op, key, path):
    raise OSError("injected I/O failure")


class TestDiskCacheHardening:
    def test_write_failure_is_swallowed_and_counted(self, tmp_path):
        breaker = CircuitBreaker(failure_threshold=3)
        disk = DiskCache(
            tmp_path, breaker=breaker, fault_hook=_deny_hook
        )
        assert disk.store("k", {"v": 1}) is False
        assert breaker.failures == 1
        assert len(disk) == 0

    def test_read_io_failure_is_a_miss_not_corruption(self, tmp_path):
        breaker = CircuitBreaker(failure_threshold=10)
        disk = DiskCache(tmp_path, strict=True, breaker=breaker)
        disk.store("k", {"v": 1})
        disk.fault_hook = _deny_hook
        # Strict mode raises for *corruption*; an I/O failure is just
        # a miss, and the entry is NOT quarantined.
        assert disk.load("k") is None
        disk.fault_hook = None
        assert disk.load("k") == {"v": 1}

    def test_breaker_opens_and_short_circuits(self, tmp_path):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=3600.0)
        disk = DiskCache(
            tmp_path, breaker=breaker, fault_hook=_deny_hook
        )
        disk.store("k", {"v": 1})
        disk.load("k")
        assert breaker.state == STATE_OPEN
        # Open breaker: no disk I/O at all, so the hook cannot fire.
        before = breaker.failures
        assert disk.load("k") is None
        assert disk.store("k", {"v": 2}) is False
        assert breaker.failures == before
        assert breaker.rejections >= 2

    def test_stale_tmp_swept_fresh_kept(self, tmp_path):
        stale = tmp_path / "aaaa.tmp-123"
        stale.write_text("{")
        old = time.time() - 3600.0
        os.utime(stale, (old, old))
        fresh = tmp_path / "bbbb.tmp-456"
        fresh.write_text("{")
        disk = DiskCache(tmp_path, stale_tmp_age=600.0)
        assert not stale.exists()
        assert fresh.exists()
        assert disk.sweep_stale_tmp() == 0

    def test_engine_metrics_report_breaker(self, tmp_path, classes):
        engine = BatchSolver(
            EngineConfig(disk_cache=tmp_path, breaker_threshold=2)
        )
        assert engine.disk.breaker is not None
        engine.evaluate_many(
            mva_requests(classes, [3, 4]), parallel=False
        )
        metrics = engine.last_metrics
        assert metrics.breaker_state == STATE_CLOSED
        assert metrics.breaker_trips == 0
        assert "breaker_state" in metrics.to_dict()


# ----------------------------------------------------------------------
# Concurrent writers on one cache directory
# ----------------------------------------------------------------------


def _hammer_store(directory: str, key: str, marker: int, rounds: int):
    disk = DiskCache(directory)
    for i in range(rounds):
        disk.store(key, {"writer": marker, "round": i})


class TestConcurrentWriters:
    def test_two_processes_same_key_last_writer_wins(self, tmp_path):
        key = "shared-key"
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(
                target=_hammer_store,
                args=(str(tmp_path), key, marker, 60),
            )
            for marker in (1, 2)
        ]
        for p in writers:
            p.start()
        for p in writers:
            p.join(60.0)
            assert p.exitcode == 0
        # Strict mode: any torn/corrupt entry would raise here.
        disk = DiskCache(tmp_path, strict=True)
        payload = disk.load(key)
        assert payload is not None
        assert payload["writer"] in (1, 2)
        assert payload["round"] == 59
        assert len(disk) == 1
        # Atomic replace leaves no tmp litter behind.
        assert not list(tmp_path.glob("*.tmp-*"))
