"""Tests for the large-system fixed-point approximation."""

from __future__ import annotations

import pytest

from repro.core.asymptotic import solve_asymptotic
from repro.core.convolution import solve_convolution
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError


def _paper_mix(n: int) -> list[TrafficClass]:
    return [
        TrafficClass.from_aggregate(0.0024, 0.0, n2=n, name="poisson"),
        TrafficClass.from_aggregate(0.0024, 0.0012, n2=n, name="pascal"),
    ]


class TestAccuracy:
    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_blocking_close_to_exact(self, n):
        dims = SwitchDimensions.square(n)
        classes = _paper_mix(n)
        exact = solve_convolution(dims, classes)
        approx = solve_asymptotic(dims, classes)
        rel = abs(approx.blocking(0) - exact.blocking(0)) / exact.blocking(0)
        assert rel < 0.10

    def test_error_shrinks_with_size(self):
        errors = []
        for n in (8, 32, 128):
            dims = SwitchDimensions.square(n)
            classes = _paper_mix(n)
            exact = solve_convolution(dims, classes).blocking(0)
            approx = solve_asymptotic(dims, classes).blocking(0)
            errors.append(abs(approx - exact) / exact)
        assert errors[0] > errors[1] > errors[2]

    def test_concurrency_close_to_exact(self):
        n = 64
        dims = SwitchDimensions.square(n)
        classes = _paper_mix(n)
        exact = solve_convolution(dims, classes)
        approx = solve_asymptotic(dims, classes)
        for r in range(2):
            assert approx.concurrency(r) == pytest.approx(
                exact.concurrency(r), rel=0.02
            )

    def test_heavy_load_still_sane(self):
        dims = SwitchDimensions(24, 24)
        classes = [
            TrafficClass.poisson(0.01),
            TrafficClass.poisson(2e-5, a=2),
        ]
        exact = solve_convolution(dims, classes)
        approx = solve_asymptotic(dims, classes)
        assert approx.blocking(0) == pytest.approx(
            exact.blocking(0), rel=0.05
        )
        assert approx.blocking(1) == pytest.approx(
            exact.blocking(1), rel=0.05
        )

    def test_revenue_matches(self):
        n = 64
        dims = SwitchDimensions.square(n)
        classes = [c.with_weight(w) for c, w in zip(_paper_mix(n), (1.0, 0.1))]
        exact = solve_convolution(dims, classes)
        approx = solve_asymptotic(dims, classes)
        assert approx.revenue() == pytest.approx(exact.revenue(), rel=0.02)


class TestStructure:
    def test_rectangular_utilizations(self):
        dims = SwitchDimensions(8, 16)
        classes = [TrafficClass.poisson(0.005)]
        approx = solve_asymptotic(dims, classes)
        assert approx.input_utilization == pytest.approx(
            2.0 * approx.output_utilization
        )

    def test_empty_load(self):
        dims = SwitchDimensions(4, 4)
        approx = solve_asymptotic(dims, [TrafficClass.poisson(0.0)])
        assert approx.concurrency(0) == 0.0
        assert approx.blocking(0) == 0.0

    def test_saturation_bounded_by_capacity(self):
        dims = SwitchDimensions(6, 6)
        approx = solve_asymptotic(dims, [TrafficClass.poisson(10.0)])
        assert approx.concurrency(0) <= 6.0
        assert 0.0 <= approx.utilization() <= 1.0

    def test_pascal_feedback_saturation(self):
        """beta close to mu: the unchecked fixed point would diverge;
        the capacity pin plus utilization feedback must tame it."""
        dims = SwitchDimensions(8, 8)
        classes = [TrafficClass(alpha=0.01, beta=0.9, mu=1.0)]
        approx = solve_asymptotic(dims, classes)
        assert 0.0 < approx.concurrency(0) <= 8.0

    def test_oversized_class(self):
        dims = SwitchDimensions(2, 2)
        classes = [TrafficClass.poisson(0.1), TrafficClass.poisson(0.1, a=4)]
        approx = solve_asymptotic(dims, classes)
        assert approx.concurrency(1) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            solve_asymptotic(SwitchDimensions(4, 4), [])

    def test_zero_capacity_switch(self):
        approx = solve_asymptotic(
            SwitchDimensions(0, 4), [TrafficClass.poisson(0.5)]
        )
        assert approx.concurrency(0) == 0.0

    def test_fixed_point_self_consistent(self):
        """At the root, total occupancy equals the balance map."""
        dims = SwitchDimensions(16, 16)
        classes = [
            TrafficClass.poisson(0.004),
            TrafficClass(alpha=0.001, beta=0.2, a=2),
        ]
        approx = solve_asymptotic(dims, classes)
        used = sum(
            c.a * e for c, e in zip(classes, approx.concurrencies)
        )
        assert approx.input_utilization == pytest.approx(used / 16)
