"""Tests for Algorithm 1 (convolution recursion, paper Section 5-6)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.convolution import log_q_grid, solve_convolution
from repro.core.productform import solve_brute_force
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import (
    ComputationError,
    ConfigurationError,
    OverflowInRecursionError,
)

MODES = ("log", "scaled", "float")


def _config_cases():
    return [
        ("single poisson", SwitchDimensions(6, 6), [TrafficClass.poisson(0.3)]),
        (
            "rectangular poisson",
            SwitchDimensions(3, 8),
            [TrafficClass.poisson(0.4)],
        ),
        (
            "pascal",
            SwitchDimensions(5, 5),
            [TrafficClass(alpha=0.1, beta=0.4)],
        ),
        (
            "bernoulli",
            SwitchDimensions(6, 6),
            [TrafficClass.bernoulli(4, 0.12)],
        ),
        (
            "multirate mix",
            SwitchDimensions(7, 6),
            [
                TrafficClass.poisson(0.2),
                TrafficClass(alpha=0.05, beta=0.3, a=2),
                TrafficClass.bernoulli(3, 0.08, a=3),
            ],
        ),
    ]


class TestAgainstBruteForce:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize(
        "label,dims,classes", _config_cases(), ids=[c[0] for c in _config_cases()]
    )
    def test_log_g_matches(self, label, dims, classes, mode):
        solution = solve_convolution(dims, classes, mode=mode)
        reference = solve_brute_force(dims, classes)
        assert solution.log_g() == pytest.approx(reference.log_g, rel=1e-10)

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize(
        "label,dims,classes", _config_cases(), ids=[c[0] for c in _config_cases()]
    )
    def test_measures_match(self, label, dims, classes, mode):
        solution = solve_convolution(dims, classes, mode=mode)
        reference = solve_brute_force(dims, classes)
        for r in range(len(classes)):
            assert solution.non_blocking(r) == pytest.approx(
                reference.non_blocking_probability(r), rel=1e-9
            )
            assert solution.concurrency(r) == pytest.approx(
                reference.concurrency(r), rel=1e-9
            )
            assert solution.call_acceptance(r) == pytest.approx(
                reference.call_acceptance(r), rel=1e-9
            )


class TestGridStructure:
    def test_boundary_row_is_inverse_factorial(self):
        grid = log_q_grid(SwitchDimensions(6, 4), [TrafficClass.poisson(0.2)])
        for m in range(7):
            assert grid[m, 0] == pytest.approx(-math.lgamma(m + 1))

    def test_boundary_column_is_inverse_factorial(self):
        grid = log_q_grid(SwitchDimensions(4, 6), [TrafficClass.poisson(0.2)])
        for m in range(7):
            assert grid[0, m] == pytest.approx(-math.lgamma(m + 1))

    def test_symmetric_for_square_problem(self):
        grid = log_q_grid(
            SwitchDimensions(5, 5), [TrafficClass(alpha=0.1, beta=0.2)]
        )
        assert np.allclose(grid, grid.T)

    def test_modes_agree_cellwise(self, small_dims, mixed_classes):
        grids = [
            log_q_grid(small_dims, mixed_classes, mode=m) for m in MODES
        ]
        for other in grids[1:]:
            assert np.allclose(grids[0], other, rtol=1e-10)

    def test_sub_dimension_queries_match_smaller_solves(self):
        dims = SwitchDimensions(8, 8)
        classes = [TrafficClass.poisson(0.15), TrafficClass(alpha=0.05, beta=0.2)]
        big = solve_convolution(dims, classes)
        small = solve_convolution(SwitchDimensions(5, 6), classes)
        at = SwitchDimensions(5, 6)
        for r in range(2):
            assert big.non_blocking(r, at=at) == pytest.approx(
                small.non_blocking(r), rel=1e-12
            )
            assert big.concurrency(r, at=at) == pytest.approx(
                small.concurrency(r), rel=1e-12
            )


class TestScalingBehaviour:
    def test_float_mode_underflows_at_large_n(self):
        dims = SwitchDimensions.square(200)
        with pytest.raises(OverflowInRecursionError):
            solve_convolution(dims, [TrafficClass.poisson(1e-5)], mode="float")

    def test_log_mode_survives_large_n(self):
        dims = SwitchDimensions.square(200)
        solution = solve_convolution(dims, [TrafficClass.poisson(1e-5)])
        assert 0.0 < solution.non_blocking(0) <= 1.0

    def test_scaled_mode_survives_large_n(self):
        dims = SwitchDimensions.square(200)
        solution = solve_convolution(
            dims, [TrafficClass.poisson(1e-5)], mode="scaled"
        )
        reference = solve_convolution(dims, [TrafficClass.poisson(1e-5)])
        assert solution.non_blocking(0) == pytest.approx(
            reference.non_blocking(0), rel=1e-10
        )

    def test_scaled_mode_survives_heavy_load(self):
        """Heavy load: G itself would overflow float64 (log G ~ 1200)."""
        dims = SwitchDimensions.square(150)
        solution = solve_convolution(
            dims, [TrafficClass.poisson(5.0)], mode="scaled"
        )
        assert solution.log_g() > 700  # beyond float64 range for G
        reference = solve_convolution(dims, [TrafficClass.poisson(5.0)])
        assert solution.non_blocking(0) == pytest.approx(
            reference.non_blocking(0), rel=1e-9
        )


class TestErrors:
    def test_empty_classes_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_convolution(SwitchDimensions(3, 3), [])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_convolution(
                SwitchDimensions(3, 3), [TrafficClass.poisson(0.1)],
                mode="quantum",
            )

    def test_invalid_bernoulli_raises(self):
        # 2.5 sources on a switch big enough to go negative
        cls = TrafficClass(alpha=0.25, beta=-0.1)
        with pytest.raises((ComputationError, ConfigurationError)):
            solve_convolution(SwitchDimensions(8, 8), [cls])


class TestOversizedClass:
    def test_class_wider_than_switch_gets_zero_measures(self):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.2), TrafficClass.poisson(0.1, a=5)]
        solution = solve_convolution(dims, classes)
        assert solution.non_blocking(1) == 0.0
        assert solution.concurrency(1) == 0.0
        # the narrow class behaves as if alone
        alone = solve_convolution(dims, classes[:1])
        assert solution.non_blocking(0) == pytest.approx(
            alone.non_blocking(0), rel=1e-12
        )
