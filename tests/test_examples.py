"""Smoke tests: every example script runs end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow  # every example script is executed end-to-end

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_example_inventory():
    """The repo ships the promised examples."""
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "integrated_services",
        "switch_dimensioning",
        "simulation_validation",
        "peakedness_study",
        "multistage_network",
        "capacity_planning",
        "transient_warmup",
        "admission_control",
        "bursty_traffic_fidelity",
    } <= names
