"""The solve-serving daemon: wire protocol, byte identity, batching.

The headline contract is **byte identity**: a result served over the
JSON wire compares equal — field by field, ``float.hex`` by
``float.hex`` — to a direct :func:`repro.api.solve` on the same
request, whether it was computed, micro-batched, coalesced or served
from cache.  Python's ``json`` emits floats via ``repr`` (shortest
exact round-trip), so nothing is lost in transit; these tests prove
it on the paper's own Table 1 configurations.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

pytestmark = pytest.mark.service  # spins up the solve-serving daemon

from repro.api import SolveRequest, solve, solve_many
from repro.core.traffic import TrafficClass
from repro.engine import BatchSolver, EngineConfig
from repro.exceptions import ConfigurationError
from repro.methods import SolveMethod
from repro.service import (
    MicroBatcher,
    ServiceClient,
    ServiceConfig,
    ServiceProtocolError,
    SingleFlight,
    SolveService,
    start_in_thread,
)
from repro.service.protocol import (
    decode_request,
    decode_result,
    encode_result,
    new_request_id,
)
from repro.workloads.scenarios import TABLE1_PAPER

# Table 1 sizes small enough to solve quickly in tests.
TABLE1_TEST_SIZES = (4, 8, 16)


def table1_requests(n: int) -> list[SolveRequest]:
    """The two Table 1 classes of size ``n`` as separate requests."""
    rho1, rho2 = TABLE1_PAPER[n]
    return [
        SolveRequest.square(
            n, [TrafficClass.from_aggregate(rho1, 0.0, n2=n, mu=1.0, a=1)]
        ),
        SolveRequest.square(
            n, [TrafficClass.from_aggregate(rho2, 0.0, n2=n, mu=1.0, a=2)]
        ),
    ]


def mixed_request(n: int = 6) -> SolveRequest:
    return SolveRequest.square(
        n,
        [
            TrafficClass.poisson(0.02, name="data"),
            TrafficClass(alpha=0.01, beta=0.02, mu=1.0, a=2, name="burst"),
        ],
    )


def assert_byte_identical(remote, local) -> None:
    """Equality plus ``float.hex`` identity on every scalar measure."""
    assert remote == local
    assert remote.request == local.request
    for name in ("blocking", "concurrency", "acceptance", "throughput"):
        for got, want in zip(getattr(remote, name), getattr(local, name)):
            assert got.hex() == want.hex(), f"{name}: {got!r} != {want!r}"
    assert remote.revenue.hex() == local.revenue.hex()
    assert remote.mean_occupancy.hex() == local.mean_occupancy.hex()
    assert remote.utilization.hex() == local.utilization.hex()


@pytest.fixture(scope="module")
def service():
    """One daemon on an ephemeral port with its own private engine."""
    handle = start_in_thread(
        ServiceConfig(port=0, batch_window=0.005),
        engine=BatchSolver(EngineConfig()),
    )
    try:
        yield handle
    finally:
        handle.stop()


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(*service.address)


# ----------------------------------------------------------------------
# Byte identity over the wire
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", TABLE1_TEST_SIZES)
def test_solve_byte_identical_to_local_table1(client, n):
    for request in table1_requests(n):
        remote = client.solve(request)
        local = solve(request)
        assert_byte_identical(remote, local)


def test_solve_byte_identical_mixed_classes(client):
    request = mixed_request()
    assert_byte_identical(client.solve(request), solve(request))


def test_solve_byte_identical_from_cache(client):
    """A repeat of the same request (now cached) is still identical."""
    request = table1_requests(4)[0]
    first = client.solve(request)
    second = client.solve(request)
    assert_byte_identical(second, first)
    assert_byte_identical(second, solve(request))


def test_batch_byte_identical_to_solve_many(client):
    requests = [r for n in TABLE1_TEST_SIZES for r in table1_requests(n)]
    remote = client.solve_many(requests)
    local = solve_many(requests)
    assert len(remote) == len(local)
    for got, want in zip(remote, local):
        assert_byte_identical(got, want)


def test_concurrent_identical_requests_coalesce_and_stay_identical():
    """Racing identical requests share one computation, byte-identically.

    A wide batch window plus a fresh engine guarantees the concurrent
    callers arrive while the leader's flight is still open, so at least
    one of them must coalesce — and every result must still compare
    equal to the local solve.
    """
    engine = BatchSolver(EngineConfig())
    handle = start_in_thread(
        ServiceConfig(port=0, batch_window=0.25), engine=engine
    )
    try:
        remote_client = ServiceClient(*handle.address)
        request = mixed_request(8)
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(
                pool.map(lambda _: remote_client.solve(request), range(8))
            )
        local = solve(request)
        for result in results:
            assert_byte_identical(result, local)
        assert handle.service.flights.hits >= 1
        assert remote_client.metric_value(
            "repro_service_coalesce_hits_total"
        ) >= 1.0
    finally:
        handle.stop()


# ----------------------------------------------------------------------
# Endpoints
# ----------------------------------------------------------------------


def test_healthz_reports_gate_and_engine(client):
    health = client.health()
    assert health["status"] == "ok"
    assert health["gate"]["capacity"] == 64
    assert health["gate"]["in_use"] == 0
    assert 0.0 <= health["gate"]["blocking_ratio"] <= 1.0
    assert "lookups" in health["engine"]
    assert health["coalesce"]["in_flight"] == 0


def test_metrics_page_renders_prometheus_text(client):
    client.solve(table1_requests(4)[0])  # ensure nonzero counters
    page = client.metrics()
    assert "# TYPE repro_service_requests_total counter" in page
    assert "# TYPE repro_service_request_seconds histogram" in page
    assert "repro_service_admission_blocking_ratio" in page
    assert "repro_engine_stat{" in page
    assert "repro_engine_breaker_state{" in page
    assert "repro_service_info{" in page
    assert client.metric_value("repro_service_gate_tokens",
                               state="capacity") == 64.0
    assert client.metric_value("repro_service_requests_total",
                               endpoint="POST /solve", status="200") >= 1.0


def test_unknown_route_is_404(client):
    status, payload = client._roundtrip("GET", "/nope")
    assert status == 404
    assert payload["error"]["kind"] == "not_found"


def test_wrong_method_is_405(client):
    status, payload = client._roundtrip("GET", "/solve")
    assert status == 405
    assert payload["error"]["kind"] == "method_not_allowed"


def test_malformed_json_is_400(client):
    status, payload = client._roundtrip("POST", "/solve", {"request": 42})
    assert status == 400
    assert payload["error"]["kind"] == "bad_request"


def test_request_ids_are_unique_and_echoed(client):
    first = client.health()
    second = client.health()
    assert first["id"] != second["id"]
    assert first["id"].startswith("req-")


# ----------------------------------------------------------------------
# Micro-batching
# ----------------------------------------------------------------------


def test_nearby_requests_share_one_flush():
    """Distinct requests inside one window land in one engine batch."""
    engine = BatchSolver(EngineConfig())
    handle = start_in_thread(
        ServiceConfig(port=0, batch_window=0.25), engine=engine
    )
    try:
        remote_client = ServiceClient(*handle.address)
        requests = table1_requests(4) + table1_requests(8)
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(remote_client.solve, requests))
        for got, request in zip(results, requests):
            assert_byte_identical(got, solve(request))
        batcher = handle.service.batcher
        assert batcher.flush_count >= 1
        assert batcher.batched_requests >= len(requests)
        # All four fit one window: strictly fewer flushes than requests.
        assert batcher.flush_count < len(requests)
    finally:
        handle.stop()


def test_max_batch_flushes_immediately():
    flushed: list[int] = []

    async def scenario() -> None:
        batcher = MicroBatcher(
            lambda requests: [object() for _ in requests],
            window=60.0, max_batch=3,
            observer=lambda size, _elapsed: flushed.append(size),
        )
        loop = asyncio.get_running_loop()
        futures = [loop.create_future() for _ in range(3)]
        request = mixed_request(4)
        for future in futures:
            batcher.submit(request, future)
        await asyncio.wait_for(asyncio.gather(*futures), timeout=5.0)
        await batcher.close()

    asyncio.run(scenario())
    assert flushed == [3]


# ----------------------------------------------------------------------
# Protocol round-trips
# ----------------------------------------------------------------------


def test_protocol_result_roundtrip_is_exact():
    request = mixed_request(5)
    local = solve(request)
    wire = json.loads(json.dumps(encode_result(local)))
    assert decode_result(wire) == local
    for r in range(len(request.classes)):
        assert decode_result(wire).blocking[r].hex() == \
            local.blocking[r].hex()


def test_protocol_accepts_bare_and_wrapped_requests():
    request = table1_requests(4)[0]
    assert decode_request(request.to_dict()) == request
    assert decode_request({"request": request.to_dict()}) == request


def test_protocol_rejects_garbage():
    with pytest.raises(ConfigurationError):
        decode_request({"request": []})
    with pytest.raises(ConfigurationError):
        decode_request("not a mapping")


def test_request_ids_monotonic():
    a, b = new_request_id(), new_request_id()
    assert a != b and a.startswith("req-") and b.startswith("req-")


# ----------------------------------------------------------------------
# SingleFlight unit behaviour
# ----------------------------------------------------------------------


def test_singleflight_join_then_evict():
    async def scenario() -> None:
        flights = SingleFlight()
        loop = asyncio.get_running_loop()
        assert flights.join("k") is None
        future = flights.lead("k", loop)
        assert flights.join("k") is future
        assert flights.hits == 1 and flights.leaders == 1
        future.set_result("done")
        await asyncio.sleep(0)  # run the eviction callback
        assert len(flights) == 0
        assert flights.join("k") is None  # next caller leads afresh

    asyncio.run(scenario())


def test_singleflight_evicts_on_failure_too():
    async def scenario() -> None:
        flights = SingleFlight()
        loop = asyncio.get_running_loop()
        future = flights.lead("k", loop)
        future.set_exception(RuntimeError("boom"))
        await asyncio.sleep(0)
        assert len(flights) == 0
        future.exception()  # consume so the loop does not warn

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------


def test_start_in_thread_binds_ephemeral_port(service):
    assert service.port > 0
    assert service.host == "127.0.0.1"


def test_stop_is_idempotent():
    handle = start_in_thread(engine=BatchSolver(EngineConfig()))
    handle.stop()
    handle.stop()  # second stop is a no-op
    assert not handle.thread.is_alive()


def test_service_config_validation():
    with pytest.raises(ConfigurationError):
        ServiceConfig(gate_capacity=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(point_weight=0)


def test_series_method_round_trips_too(client):
    request = SolveRequest.square(
        6, [TrafficClass.poisson(0.05)], method=SolveMethod.EXACT
    )
    assert_byte_identical(client.solve(request), solve(request))
