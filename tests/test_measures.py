"""Tests for the shared PerformanceSolution measure interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.convolution import solve_convolution
from repro.core.measures import PerformanceSolution
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError


@pytest.fixture
def solution(small_dims, mixed_classes):
    return solve_convolution(small_dims, mixed_classes)


class TestQueries:
    def test_blocking_complements_non_blocking(self, solution):
        for r in range(3):
            assert solution.blocking(r) == pytest.approx(
                1.0 - solution.non_blocking(r)
            )

    def test_probabilities_in_unit_interval(self, solution):
        for r in range(3):
            assert 0.0 <= solution.non_blocking(r) <= 1.0
            assert 0.0 <= solution.call_acceptance(r) <= 1.0

    def test_equal_bandwidth_classes_share_blocking(self, small_dims):
        classes = [
            TrafficClass.poisson(0.2),
            TrafficClass(alpha=0.1, beta=0.3),
        ]
        solution = solve_convolution(small_dims, classes)
        # B_r depends only on a_r: both a=1 classes see the same ratio.
        assert solution.non_blocking(0) == pytest.approx(
            solution.non_blocking(1), rel=1e-12
        )

    def test_concurrencies_list(self, solution):
        values = solution.concurrencies()
        assert len(values) == 3
        for r, v in enumerate(values):
            assert v == pytest.approx(solution.concurrency(r))

    def test_mean_occupancy_weights_by_bandwidth(self, solution, mixed_classes):
        expected = sum(
            c.a * solution.concurrency(r)
            for r, c in enumerate(mixed_classes)
        )
        assert solution.mean_occupancy() == pytest.approx(expected)

    def test_utilization_bounded(self, solution):
        assert 0.0 <= solution.utilization() <= 1.0

    def test_total_throughput(self, solution):
        expected = sum(solution.throughput(r) for r in range(3))
        assert solution.total_throughput() == pytest.approx(expected)

    def test_summary_mentions_each_class(self, solution, mixed_classes):
        text = solution.summary()
        for cls in mixed_classes:
            assert cls.name in text


class TestSubDimensionResolution:
    def test_out_of_grid_rejected(self, solution, small_dims):
        too_big = SwitchDimensions(small_dims.n1 + 1, small_dims.n2)
        with pytest.raises(ConfigurationError):
            solution.non_blocking(0, at=too_big)

    def test_zero_capacity_sub_dims(self, solution):
        at = SwitchDimensions(0, 3)
        assert solution.non_blocking(0, at=at) == 0.0
        assert solution.utilization(at=at) == 0.0

    def test_revenue_at_reduced_dims_matches_direct_solve(
        self, solution, small_dims, mixed_classes
    ):
        reduced = SwitchDimensions(small_dims.n1 - 1, small_dims.n2 - 1)
        direct = solve_convolution(reduced, mixed_classes)
        assert solution.revenue(at=reduced) == pytest.approx(
            direct.revenue(), rel=1e-10
        )


class TestConstructionValidation:
    def test_wrong_grid_count(self, small_dims):
        classes = (TrafficClass.poisson(0.1),)
        shape = (small_dims.n1 + 1, small_dims.n2 + 1)
        with pytest.raises(ConfigurationError):
            PerformanceSolution(
                dims=small_dims,
                classes=classes,
                h=(np.zeros(shape), np.zeros(shape)),
            )

    def test_wrong_grid_shape(self, small_dims):
        classes = (TrafficClass.poisson(0.1),)
        with pytest.raises(ConfigurationError):
            PerformanceSolution(
                dims=small_dims, classes=classes, h=(np.zeros((2, 2)),)
            )


class TestCallAcceptanceClosedForm:
    def test_poisson_equals_non_blocking(self, small_dims):
        classes = [TrafficClass.poisson(0.4)]
        solution = solve_convolution(small_dims, classes)
        assert solution.call_acceptance(0) == pytest.approx(
            solution.non_blocking(0)
        )

    def test_zero_offered_load_treated_as_full_acceptance(self, small_dims):
        classes = [TrafficClass.poisson(0.3), TrafficClass(alpha=0.0, beta=0.1)]
        solution = solve_convolution(small_dims, classes)
        assert solution.call_acceptance(1) == 1.0

    def test_oversized_class_acceptance_zero(self):
        dims = SwitchDimensions(2, 2)
        classes = [TrafficClass(alpha=0.1, beta=0.2, a=3)]
        solution = solve_convolution(dims, classes)
        assert solution.call_acceptance(0) == 0.0
