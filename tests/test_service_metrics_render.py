"""Property tests: the Prometheus page round-trips every value exactly.

The metrics module renders floats with ``repr()`` — the shortest exact
round-trip — so a scraper parsing ``/metrics`` recovers the stored
numbers to the last bit.  These tests drive arbitrary floats through
counters, gauges and histogram sums, re-parse the rendered page, and
require ``float(<token>) == <stored value>`` bit-for-bit, plus the
explicit ``+Inf``/``-Inf``/``NaN`` spellings the exposition format
mandates for non-finite values.
"""

from __future__ import annotations

import math
import re

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given
from hypothesis import strategies as st

from repro.service.metrics import (
    Gauge,
    Histogram,
    MetricsRegistry,
    _format_value,
)

_SAMPLE_RE = re.compile(r"^(?P<name>[a-zA-Z_:][\w:]*)(?P<labels>\{.*\})? (?P<value>\S+)$")

finite_floats = st.floats(allow_nan=False, allow_infinity=False)


def parse_samples(page: str) -> dict[str, str]:
    """``{sample name + labels: value token}`` for every non-comment line."""
    samples = {}
    for line in page.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable exposition line: {line!r}"
        key = match.group("name") + (match.group("labels") or "")
        samples[key] = match.group("value")
    return samples


@given(value=finite_floats)
def test_counter_value_round_trips(value):
    registry = MetricsRegistry()
    counter = registry.counter("events_total", "test counter")
    counter.inc(value, path="/solve")
    token = parse_samples(registry.render())['events_total{path="/solve"}']
    assert float(token) == counter.value(path="/solve")
    # repr is the shortest *exact* rendering: parsing must be lossless
    # even for values like 0.1 + 0.2 that decimal rounding would mangle.
    assert float(token).hex() == float(counter.value(path="/solve")).hex()


@given(value=finite_floats)
def test_gauge_value_round_trips(value):
    registry = MetricsRegistry()
    gauge = registry.gauge("queue_depth", "test gauge")
    gauge.set(value)
    token = parse_samples(registry.render())["queue_depth"]
    assert float(token).hex() == float(value).hex()


@given(values=st.lists(st.floats(min_value=-1e12, max_value=1e12), min_size=1, max_size=20))
def test_histogram_sum_round_trips(values):
    registry = MetricsRegistry()
    hist = registry.histogram("latency_seconds", "test histogram", buckets=(0.1, 1.0))
    for v in values:
        hist.observe(v)
    samples = parse_samples(registry.render())
    total = 0.0
    for v in values:
        total += v
    assert float(samples["latency_seconds_sum"]).hex() == total.hex()
    assert int(samples["latency_seconds_count"]) == len(values)
    assert int(samples['latency_seconds_bucket{le="+Inf"}']) == len(values)


@given(value=finite_floats)
def test_format_value_is_repr_for_finite_floats(value):
    assert _format_value(value) == repr(value)
    assert float(_format_value(value)).hex() == value.hex()


def test_format_value_nonfinite_spellings():
    # The exposition format requires these exact spellings; Python's
    # repr ("inf"/"nan") would be rejected by a Prometheus scraper.
    assert _format_value(math.inf) == "+Inf"
    assert _format_value(-math.inf) == "-Inf"
    assert _format_value(math.nan) == "NaN"
    # ... and Python itself parses them right back.
    assert float("+Inf") == math.inf
    assert float("-Inf") == -math.inf
    assert math.isnan(float("NaN"))


def test_nonfinite_gauge_renders_parseable_page():
    registry = MetricsRegistry()
    gauge = registry.gauge("weird", "non-finite values")
    gauge.set(math.inf, case="pos")
    gauge.set(-math.inf, case="neg")
    gauge.set(math.nan, case="nan")
    samples = parse_samples(registry.render())
    assert float(samples['weird{case="pos"}']) == math.inf
    assert float(samples['weird{case="neg"}']) == -math.inf
    assert math.isnan(float(samples['weird{case="nan"}']))


@given(value=st.integers(min_value=-(10**15), max_value=10**15))
def test_integer_values_render_without_exponent(value):
    gauge = Gauge("g", "int gauge")
    gauge.set(value)
    (line,) = gauge.sample_lines()
    token = line.split()[-1]
    assert token == str(value)
    assert int(token) == value


def test_histogram_quantile_estimate_brackets_observations():
    hist = Histogram("h", "latency", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 2.0):
        hist.observe(v)
    assert hist.quantile(0.25) == 0.01
    assert hist.quantile(0.75) == 1.0
    assert hist.quantile(1.0) == math.inf
