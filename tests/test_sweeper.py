"""Tests for the declarative sweep runner."""

from __future__ import annotations

import csv
import io

import pytest

from repro.core.mva import solve_mva
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError
from repro.experiments import SweepSpec, run_sweep, write_csv


def _classes(n: int):
    return [
        TrafficClass.from_aggregate(0.0024, 0.0, n2=n, name="p"),
        TrafficClass.from_aggregate(0.0012, 0.0006, n2=n, name="pk"),
    ]


class TestRunSweep:
    def test_rows_and_columns(self):
        spec = SweepSpec(
            name="s", sizes=[2, 4], classes_for=_classes,
            measures=("blocking", "revenue"),
        )
        rows = run_sweep(spec)
        assert [row["n"] for row in rows] == [2, 4]
        assert "blocking[p]" in rows[0]
        assert "blocking[pk]" in rows[0]
        assert "revenue" in rows[0]

    def test_values_match_direct_solve(self):
        from repro.core.convolution import solve_convolution
        from repro.core.state import SwitchDimensions

        spec = SweepSpec(
            name="s", sizes=[4], classes_for=_classes,
            measures=("blocking", "concurrency", "utilization"),
        )
        row = run_sweep(spec)[0]
        direct = solve_convolution(SwitchDimensions.square(4), _classes(4))
        assert row["blocking[p]"] == pytest.approx(direct.blocking(0))
        assert row["concurrency[pk]"] == pytest.approx(
            direct.concurrency(1)
        )
        assert row["utilization"] == pytest.approx(direct.utilization())

    def test_custom_solver(self):
        spec = SweepSpec(
            name="s", sizes=[3], classes_for=_classes,
            measures=("blocking",), solver=solve_mva,
        )
        assert run_sweep(spec)[0]["blocking[p]"] > 0.0

    def test_unknown_measure_rejected(self):
        spec = SweepSpec(
            name="s", sizes=[2], classes_for=_classes,
            measures=("latency",),
        )
        with pytest.raises(ConfigurationError):
            run_sweep(spec)

    def test_empty_sizes_rejected(self):
        spec = SweepSpec(name="s", sizes=[], classes_for=_classes)
        with pytest.raises(ConfigurationError):
            run_sweep(spec)


class TestWriteCsv:
    def test_csv_roundtrip(self, tmp_path):
        spec = SweepSpec(
            name="s", sizes=[2, 4], classes_for=_classes,
            measures=("blocking", "revenue"),
        )
        rows = run_sweep(spec)
        path = tmp_path / "sweep.csv"
        text = write_csv(rows, path)
        assert path.read_text() == text
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert float(parsed[1]["revenue"]) == pytest.approx(
            rows[1]["revenue"]
        )

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            write_csv([])

    def test_docstring_example(self):
        import doctest

        import repro.experiments.sweeper as module

        results = doctest.testmod(module)
        assert results.failed == 0


class TestFailedPoints:
    def test_failed_point_becomes_error_row(self):
        from repro.engine import (
            BatchSolver,
            ChaosFault,
            EngineConfig,
            FaultPlan,
            set_default_engine,
        )
        from repro.engine.chaos import ALL_ATTEMPTS

        # Size-dependent mixes prevent Q-grid grouping, so each point
        # is its own supervised task; task 1 (n=4) fails permanently.
        chaos = FaultPlan(
            faults=(
                ChaosFault(
                    "transient-error", task=1, attempt=ALL_ATTEMPTS
                ),
            )
        )
        previous = set_default_engine(
            BatchSolver(EngineConfig(chaos=chaos, max_retries=0))
        )
        try:
            spec = SweepSpec(
                name="s", sizes=[3, 4], classes_for=_classes,
                measures=("blocking",),
            )
            rows = run_sweep(spec)
        finally:
            set_default_engine(previous)
        assert rows[0]["n"] == 3
        assert "blocking[p]" in rows[0]
        assert rows[1] == {
            "n": 4,
            "error": rows[1]["error"],
        }
        assert rows[1]["error"].startswith("OSError")
        # The union-of-columns CSV writer leaves the measures blank.
        text = write_csv(rows)
        reader = list(csv.DictReader(io.StringIO(text)))
        assert reader[1]["blocking[p]"] == ""
        assert "OSError" in reader[1]["error"]
