"""Tests for the brute-force product-form reference (paper eq. 2-3)."""

from __future__ import annotations

import math

import pytest

from repro.core.productform import (
    log_normalization,
    log_phi,
    log_psi,
    log_state_weight,
    solve_brute_force,
)
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError


class TestPsiPhi:
    def test_psi_empty_state_is_one(self):
        assert log_psi(SwitchDimensions(4, 6), 0) == pytest.approx(0.0)

    def test_psi_full_occupancy(self):
        # Psi = P(2,2) * P(3,2) = 2 * 6
        assert log_psi(SwitchDimensions(2, 3), 2) == pytest.approx(
            math.log(12)
        )

    def test_psi_infeasible_state_is_zero_weight(self):
        assert log_psi(SwitchDimensions(2, 3), 3) == -math.inf

    def test_phi_poisson_is_rho_k_over_k_factorial(self):
        cls = TrafficClass.poisson(0.5)
        assert log_phi(cls, 3) == pytest.approx(math.log(0.5**3 / 6))

    def test_phi_zero_connections_is_one(self):
        assert log_phi(TrafficClass.poisson(0.5), 0) == pytest.approx(0.0)

    def test_phi_negative_k_rejected(self):
        with pytest.raises(ConfigurationError):
            log_phi(TrafficClass.poisson(0.5), -1)

    def test_phi_pascal_grows_with_burstiness(self):
        quiet = TrafficClass(alpha=0.2, beta=0.0)
        bursty = TrafficClass(alpha=0.2, beta=0.5)
        assert log_phi(bursty, 3) > log_phi(quiet, 3)

    def test_phi_bernoulli_terminates_at_sources(self):
        cls = TrafficClass.bernoulli(2, 0.3)
        assert log_phi(cls, 3) == -math.inf

    def test_state_weight_combines_psi_and_phi(self):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.4)]
        expected = log_psi(dims, 2) + log_phi(classes[0], 2)
        assert log_state_weight(dims, classes, (2,)) == pytest.approx(expected)


class TestTinySystemsByHand:
    """Closed-form checks on systems small enough to do on paper."""

    def test_one_by_one_single_poisson(self):
        # G = 1 + rho; B = 1/(1+rho); E = rho/(1+rho)
        rho = 0.37
        dist = solve_brute_force(
            SwitchDimensions(1, 1), [TrafficClass.poisson(rho)]
        )
        assert math.exp(dist.log_g) == pytest.approx(1 + rho)
        assert dist.non_blocking_probability(0) == pytest.approx(
            1 / (1 + rho)
        )
        assert dist.concurrency(0) == pytest.approx(rho / (1 + rho))

    def test_two_by_two_single_poisson(self):
        # G = 1 + 4 rho + 2 rho^2 (Psi(1)=4, Psi(2)=4, Phi(2)=rho^2/2)
        rho = 0.25
        dist = solve_brute_force(
            SwitchDimensions(2, 2), [TrafficClass.poisson(rho)]
        )
        assert math.exp(dist.log_g) == pytest.approx(
            1 + 4 * rho + 2 * rho**2
        )

    def test_rectangular_psi(self):
        # 1x2 switch: G = 1 + Psi(1) rho = 1 + 2 rho
        rho = 0.4
        dist = solve_brute_force(
            SwitchDimensions(1, 2), [TrafficClass.poisson(rho)]
        )
        assert math.exp(dist.log_g) == pytest.approx(1 + 2 * rho)

    def test_pascal_two_states(self):
        # 1x1 switch, Pascal: G = 1 + alpha/mu
        dist = solve_brute_force(
            SwitchDimensions(1, 1), [TrafficClass(alpha=0.3, beta=0.5)]
        )
        assert math.exp(dist.log_g) == pytest.approx(1.3)

    def test_multirate_class_on_exact_fit(self):
        # a=2 on 2x2: G = 1 + P(2,2)P(2,2) rho = 1 + 4 rho
        rho = 0.11
        dist = solve_brute_force(
            SwitchDimensions(2, 2), [TrafficClass.poisson(rho, a=2)]
        )
        assert math.exp(dist.log_g) == pytest.approx(1 + 4 * rho)


class TestDistributionInvariants:
    def test_normalized(self, small_dims, mixed_classes):
        dist = solve_brute_force(small_dims, mixed_classes)
        assert dist.check_normalized()

    def test_detailed_balance(self, small_dims, mixed_classes):
        dist = solve_brute_force(small_dims, mixed_classes)
        assert dist.detailed_balance_residual() < 1e-12

    def test_occupancy_distribution_sums_to_one(
        self, small_dims, mixed_classes
    ):
        dist = solve_brute_force(small_dims, mixed_classes)
        assert sum(dist.occupancy_distribution()) == pytest.approx(1.0)

    def test_mean_occupancy_consistent_with_concurrencies(
        self, small_dims, mixed_classes
    ):
        dist = solve_brute_force(small_dims, mixed_classes)
        expected = sum(
            c.a * dist.concurrency(r) for r, c in enumerate(mixed_classes)
        )
        assert dist.mean_occupancy() == pytest.approx(expected)

    def test_utilization_in_unit_interval(self, small_dims, mixed_classes):
        dist = solve_brute_force(small_dims, mixed_classes)
        assert 0.0 <= dist.utilization() <= 1.0

    def test_probability_lookup(self, small_dims, mixed_classes):
        dist = solve_brute_force(small_dims, mixed_classes)
        empty = tuple([0] * len(mixed_classes))
        assert dist.probability(empty) == pytest.approx(
            math.exp(-dist.log_g)
        )
        assert dist.probability((99, 99, 99)) == 0.0

    def test_as_dict_roundtrip(self, small_dims, mixed_classes):
        dist = solve_brute_force(small_dims, mixed_classes)
        table = dist.as_dict()
        assert len(table) == len(dist.states)
        assert sum(table.values()) == pytest.approx(1.0)

    def test_log_normalization_matches_solver(self, small_dims, mixed_classes):
        assert log_normalization(small_dims, mixed_classes) == pytest.approx(
            solve_brute_force(small_dims, mixed_classes).log_g
        )


class TestCongestionMeasures:
    def test_poisson_call_acceptance_equals_ratio_form(self):
        """PASTA: for Poisson arrivals, call acceptance == B_r."""
        dims = SwitchDimensions(4, 5)
        classes = [TrafficClass.poisson(0.3), TrafficClass.poisson(0.1, a=2)]
        dist = solve_brute_force(dims, classes)
        for r in range(2):
            assert dist.call_acceptance(r) == pytest.approx(
                dist.non_blocking_probability(r), rel=1e-12
            )

    def test_bursty_call_acceptance_differs_from_ratio_form(self):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass(alpha=0.2, beta=0.5)]
        dist = solve_brute_force(dims, classes)
        assert dist.call_acceptance(0) != pytest.approx(
            dist.non_blocking_probability(0), rel=1e-6
        )

    def test_peaky_calls_see_more_blocking_than_time_average(self):
        """Peaky arrivals cluster in busy states: call congestion of a
        Pascal class exceeds the non-blocking-ratio complement."""
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass(alpha=0.2, beta=0.5)]
        dist = solve_brute_force(dims, classes)
        assert dist.call_congestion(0) > dist.blocking_probability(0)

    def test_time_congestion_definition(self):
        # 1x1 Poisson: time congestion = P(busy) = rho/(1+rho)
        rho = 0.5
        dist = solve_brute_force(
            SwitchDimensions(1, 1), [TrafficClass.poisson(rho)]
        )
        assert dist.time_congestion(0) == pytest.approx(rho / (1 + rho))

    def test_throughput_equals_mu_times_concurrency(
        self, small_dims, mixed_classes
    ):
        dist = solve_brute_force(small_dims, mixed_classes)
        for r, cls in enumerate(mixed_classes):
            assert dist.throughput(r) == pytest.approx(
                cls.mu * dist.concurrency(r)
            )

    def test_revenue_is_weighted_concurrency(self, small_dims, mixed_classes):
        dist = solve_brute_force(small_dims, mixed_classes)
        expected = sum(
            c.weight * dist.concurrency(r)
            for r, c in enumerate(mixed_classes)
        )
        assert dist.revenue() == pytest.approx(expected)

    def test_flow_balance_identity_for_bursty_class(self):
        """mu E = P(N1,a) P(N2,a) (alpha + beta E) * call_acceptance."""
        from repro.core.state import permutation

        dims = SwitchDimensions(4, 4)
        cls = TrafficClass(alpha=0.15, beta=0.4, mu=1.3)
        dist = solve_brute_force(dims, [cls])
        e = dist.concurrency(0)
        full = permutation(4, 1) ** 2
        lhs = cls.mu * e
        rhs = full * (cls.alpha + cls.beta * e) * dist.call_acceptance(0)
        assert lhs == pytest.approx(rhs, rel=1e-10)
