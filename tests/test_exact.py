"""Tests for the exact rational-arithmetic oracle."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.core.convolution import solve_convolution
from repro.core.exact import exact_q_table, solve_exact
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError


class TestExactTable:
    def test_boundary_values_are_exact_inverse_factorials(self):
        table = exact_q_table(
            SwitchDimensions(5, 3), [TrafficClass.poisson(0.5)]
        )
        for m in range(6):
            assert table[m][0] == Fraction(1, math.factorial(m))
        for m in range(4):
            assert table[0][m] == Fraction(1, math.factorial(m))

    def test_known_closed_form(self):
        # Q(2,2) single Poisson a=1: 1/4 + rho + rho^2/2... derive:
        # states k=0,1,2: Q = 1/(2!2!) + rho/(1!1!) + rho^2/2! = 1/4 + rho + rho^2/2
        rho = Fraction(1, 4)
        table = exact_q_table(
            SwitchDimensions(2, 2), [TrafficClass.poisson(float(rho))]
        )
        assert table[2][2] == Fraction(1, 4) + rho + rho**2 / 2

    def test_empty_classes_rejected(self):
        with pytest.raises(ConfigurationError):
            exact_q_table(SwitchDimensions(2, 2), [])


class TestExactSolution:
    def test_matches_float_algorithms(self, small_dims, mixed_classes):
        exact = solve_exact(small_dims, mixed_classes)
        conv = solve_convolution(small_dims, mixed_classes)
        for r in range(len(mixed_classes)):
            assert exact.non_blocking(r) == pytest.approx(
                conv.non_blocking(r), rel=1e-12
            )
            assert exact.concurrency(r) == pytest.approx(
                conv.concurrency(r), rel=1e-12
            )

    def test_log_g_matches(self, small_dims, mixed_classes):
        exact = solve_exact(small_dims, mixed_classes)
        conv = solve_convolution(small_dims, mixed_classes)
        assert exact.log_g() == pytest.approx(conv.log_g(), rel=1e-12)

    def test_float_error_is_tiny_at_moderate_size(self):
        """Quantify Algorithm 1's float error against the oracle —
        the Section 5.1 stability discussion, made concrete."""
        dims = SwitchDimensions.square(24)
        classes = [
            TrafficClass.poisson(0.02),
            TrafficClass(alpha=0.01, beta=0.3),
        ]
        exact = solve_exact(dims, classes)
        for mode in ("log", "scaled"):
            approx = solve_convolution(dims, classes, mode=mode)
            for r in range(2):
                rel = abs(
                    approx.non_blocking(r) - exact.non_blocking(r)
                ) / exact.non_blocking(r)
                assert rel < 1e-11

    def test_log_of_huge_fraction_does_not_overflow(self):
        """log Q via numerator/denominator bit arithmetic."""
        dims = SwitchDimensions.square(40)
        exact = solve_exact(dims, [TrafficClass.poisson(0.01)])
        conv = solve_convolution(dims, [TrafficClass.poisson(0.01)])
        assert exact.log_g() == pytest.approx(conv.log_g(), rel=1e-12)
