"""Tests for the simulation statistics toolkit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.sim.stats import (
    ConfidenceInterval,
    RatioEstimator,
    TallyStatistic,
    TimeWeightedMean,
    t_confidence_interval,
)


class TestTimeWeightedMean:
    def test_piecewise_constant_average(self):
        twm = TimeWeightedMean()
        twm.update(2.0, 1.0)   # value 2 held over [0, 1)
        twm.update(4.0, 3.0)   # value 4 held over [1, 3)
        assert twm.mean(3.0) == pytest.approx((2.0 + 8.0) / 3.0)

    def test_reset_discards_warmup(self):
        twm = TimeWeightedMean()
        twm.update(100.0, 5.0)
        twm.reset(5.0)
        twm.update(1.0, 7.0)
        assert twm.mean(7.0) == pytest.approx(1.0)

    def test_zero_span_is_zero(self):
        assert TimeWeightedMean().mean(0.0) == 0.0

    def test_time_reversal_rejected(self):
        twm = TimeWeightedMean()
        twm.update(1.0, 2.0)
        with pytest.raises(SimulationError):
            twm.update(1.0, 1.0)


class TestTallyStatistic:
    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        data = rng.normal(3.0, 2.0, size=500)
        tally = TallyStatistic()
        for v in data:
            tally.add(float(v))
        assert tally.mean == pytest.approx(float(np.mean(data)))
        assert tally.variance == pytest.approx(float(np.var(data, ddof=1)))
        assert tally.stddev == pytest.approx(float(np.std(data, ddof=1)))

    def test_variance_zero_below_two_samples(self):
        tally = TallyStatistic()
        tally.add(5.0)
        assert tally.variance == 0.0


class TestRatioEstimator:
    def test_counts(self):
        est = RatioEstimator()
        for accepted in (True, False, True, True):
            est.observe(accepted)
        assert est.offered == 4
        assert est.accepted == 3
        assert est.ratio == pytest.approx(0.75)

    def test_empty_ratio_is_one(self):
        assert RatioEstimator().ratio == 1.0

    def test_merge(self):
        a = RatioEstimator(offered=10, accepted=7)
        b = RatioEstimator(offered=5, accepted=1)
        a.merge(b)
        assert (a.offered, a.accepted) == (15, 8)


class TestConfidenceIntervals:
    def test_interval_bounds(self):
        ci = ConfidenceInterval(estimate=2.0, half_width=0.5, level=0.95)
        assert ci.low == pytest.approx(1.5)
        assert ci.high == pytest.approx(2.5)
        assert ci.contains(2.4)
        assert not ci.contains(2.6)

    def test_t_interval_known_case(self):
        values = [1.0, 2.0, 3.0]
        ci = t_confidence_interval(values, level=0.95)
        assert ci.estimate == pytest.approx(2.0)
        # t(0.975, df=2) = 4.3027; s = 1; half = 4.3027 / sqrt(3)
        assert ci.half_width == pytest.approx(4.3027 / np.sqrt(3), rel=1e-4)

    def test_single_value_gives_infinite_width(self):
        ci = t_confidence_interval([5.0])
        assert ci.half_width == np.inf

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            t_confidence_interval([])

    def test_coverage_on_synthetic_data(self):
        """~95% of CIs from normal samples should contain the mean."""
        rng = np.random.default_rng(7)
        hits = 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(10.0, 3.0, size=8)
            ci = t_confidence_interval([float(v) for v in sample], 0.95)
            hits += ci.contains(10.0)
        assert 0.90 <= hits / trials <= 0.99
