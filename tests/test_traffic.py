"""Unit tests for BPP traffic classes and moment utilities."""

from __future__ import annotations

import math

import pytest

from repro.core.traffic import (
    PEAKY,
    REGULAR,
    SMOOTH,
    TrafficClass,
    bpp_mean,
    bpp_peakedness,
    bpp_variance,
    classify_bpp,
    fit_bpp_from_moments,
)
from repro.exceptions import InvalidParameterError


class TestBppMoments:
    def test_poisson_mean_equals_offered_load(self):
        assert bpp_mean(0.4, 0.0, mu=2.0) == pytest.approx(0.2)

    def test_poisson_variance_equals_mean(self):
        assert bpp_variance(0.4, 0.0) == pytest.approx(bpp_mean(0.4, 0.0))

    def test_pascal_variance_exceeds_mean(self):
        assert bpp_variance(0.4, 0.5) > bpp_mean(0.4, 0.5)

    def test_bernoulli_variance_below_mean(self):
        assert bpp_variance(0.4, -0.5) < bpp_mean(0.4, -0.5)

    def test_peakedness_is_variance_over_mean(self):
        alpha, beta, mu = 0.3, 0.25, 1.5
        z = bpp_variance(alpha, beta, mu) / bpp_mean(alpha, beta, mu)
        assert bpp_peakedness(beta, mu) == pytest.approx(z)

    def test_mean_rejects_beta_at_mu(self):
        with pytest.raises(InvalidParameterError):
            bpp_mean(0.1, 1.0, mu=1.0)

    def test_variance_rejects_beta_above_mu(self):
        with pytest.raises(InvalidParameterError):
            bpp_variance(0.1, 2.0, mu=1.0)

    def test_peakedness_rejects_beta_at_mu(self):
        with pytest.raises(InvalidParameterError):
            bpp_peakedness(1.0, mu=1.0)


class TestClassification:
    def test_negative_beta_is_smooth(self):
        assert classify_bpp(0.5, -0.1) == SMOOTH

    def test_zero_beta_is_regular(self):
        assert classify_bpp(0.5, 0.0) == REGULAR

    def test_positive_beta_is_peaky(self):
        assert classify_bpp(0.5, 0.1) == PEAKY

    def test_negative_alpha_rejected(self):
        with pytest.raises(InvalidParameterError):
            classify_bpp(-0.1, 0.0)


class TestMomentFitting:
    def test_roundtrip_peaky(self):
        alpha, beta = fit_bpp_from_moments(0.8, 2.5, mu=1.0)
        assert bpp_mean(alpha, beta) == pytest.approx(0.8)
        assert bpp_peakedness(beta) == pytest.approx(2.5)

    def test_roundtrip_smooth(self):
        alpha, beta = fit_bpp_from_moments(0.3, 0.5, mu=2.0)
        assert beta < 0
        assert bpp_mean(alpha, beta, 2.0) == pytest.approx(0.3)
        assert bpp_peakedness(beta, 2.0) == pytest.approx(0.5)

    def test_unit_peakedness_gives_poisson(self):
        alpha, beta = fit_bpp_from_moments(0.7, 1.0)
        assert beta == pytest.approx(0.0)
        assert alpha == pytest.approx(0.7)

    @pytest.mark.parametrize("bad", [-1.0, 0.0])
    def test_rejects_nonpositive_peakedness(self, bad):
        with pytest.raises(InvalidParameterError):
            fit_bpp_from_moments(0.5, bad)

    def test_rejects_negative_mean(self):
        with pytest.raises(InvalidParameterError):
            fit_bpp_from_moments(-0.5, 1.0)

    def test_rejects_nonpositive_mu(self):
        with pytest.raises(InvalidParameterError):
            fit_bpp_from_moments(0.5, 1.0, mu=0.0)


class TestTrafficClass:
    def test_default_weight_is_mu(self):
        cls = TrafficClass(alpha=0.1, mu=2.5)
        assert cls.weight == 2.5

    def test_rho_and_b(self):
        cls = TrafficClass(alpha=0.3, beta=0.1, mu=2.0)
        assert cls.rho == pytest.approx(0.15)
        assert cls.b == pytest.approx(0.05)

    def test_rate_is_linear(self):
        cls = TrafficClass(alpha=0.2, beta=0.05)
        assert cls.rate(0) == pytest.approx(0.2)
        assert cls.rate(4) == pytest.approx(0.4)

    def test_rate_clamped_at_zero_for_bernoulli(self):
        cls = TrafficClass.bernoulli(3, 0.1)
        assert cls.rate(3) == 0.0
        assert cls.rate(5) == 0.0

    def test_poisson_constructor(self):
        cls = TrafficClass.poisson(0.25, mu=4.0)
        assert cls.alpha == pytest.approx(1.0)
        assert cls.is_poisson and not cls.is_bursty

    def test_bernoulli_constructor_sources(self):
        cls = TrafficClass.bernoulli(6, 0.1)
        assert cls.sources == pytest.approx(6.0)
        assert cls.kind == SMOOTH

    def test_sources_none_for_poisson_and_pascal(self):
        assert TrafficClass.poisson(0.1).sources is None
        assert TrafficClass(alpha=0.1, beta=0.2).sources is None

    def test_from_moments_constructor(self):
        cls = TrafficClass.from_moments(0.5, 3.0, mu=1.0)
        assert cls.peakedness == pytest.approx(3.0)
        assert cls.kind == PEAKY

    def test_from_aggregate_divides_by_output_sets(self):
        cls = TrafficClass.from_aggregate(0.24, 0.12, n2=4, a=1)
        assert cls.alpha == pytest.approx(0.06)
        assert cls.beta == pytest.approx(0.03)

    def test_from_aggregate_multirate_uses_binomial(self):
        cls = TrafficClass.from_aggregate(0.6, 0.0, n2=4, a=2)
        assert cls.alpha == pytest.approx(0.6 / 6)

    def test_from_aggregate_rejects_small_switch(self):
        with pytest.raises(InvalidParameterError):
            TrafficClass.from_aggregate(0.1, 0.0, n2=1, a=2)

    def test_aggregate_roundtrip(self):
        cls = TrafficClass.from_aggregate(0.24, -0.001, n2=8, a=1)
        assert cls.aggregate_alpha(8) == pytest.approx(0.24)
        assert cls.aggregate_beta(8) == pytest.approx(-0.001)

    def test_with_weight(self):
        cls = TrafficClass.poisson(0.1).with_weight(7.0)
        assert cls.weight == 7.0
        assert cls.rho == pytest.approx(0.1)

    def test_rejects_negative_alpha(self):
        with pytest.raises(InvalidParameterError):
            TrafficClass(alpha=-0.1)

    def test_rejects_nonpositive_mu(self):
        with pytest.raises(InvalidParameterError):
            TrafficClass(alpha=0.1, mu=0.0)

    def test_rejects_beta_at_mu(self):
        with pytest.raises(InvalidParameterError):
            TrafficClass(alpha=0.1, beta=1.0, mu=1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(InvalidParameterError):
            TrafficClass(alpha=0.1, a=0)

    def test_bernoulli_rejects_bad_sources(self):
        with pytest.raises(InvalidParameterError):
            TrafficClass.bernoulli(0, 0.1)

    def test_bernoulli_rejects_bad_rate(self):
        with pytest.raises(InvalidParameterError):
            TrafficClass.bernoulli(3, 0.0)

    def test_describe_mentions_kind(self):
        assert "pascal" in TrafficClass(alpha=0.1, beta=0.2).describe()

    def test_from_service_slowdown_equivalence(self):
        """Section 2: state-dependent service mu(k) = k mu/(v + dk)
        with unit Poisson arrivals == BPP arrivals with
        alpha = v + delta, beta = delta."""
        cls = TrafficClass.from_service_slowdown(v=0.3, delta=0.1, mu=2.0)
        assert cls.alpha == pytest.approx(0.4)
        assert cls.beta == pytest.approx(0.1)
        assert cls.kind == PEAKY

    def test_from_service_slowdown_delta_zero_is_poisson(self):
        cls = TrafficClass.from_service_slowdown(v=0.5, delta=0.0)
        assert cls.is_poisson
        assert cls.rho == pytest.approx(0.5)

    def test_from_service_slowdown_rejects_negative_v(self):
        with pytest.raises(InvalidParameterError):
            TrafficClass.from_service_slowdown(v=-0.1, delta=0.2)


class TestValidateFor:
    def test_class_too_wide_for_switch(self):
        cls = TrafficClass.poisson(0.1, a=4)
        with pytest.raises(InvalidParameterError):
            cls.validate_for(3, 8)

    def test_integer_sources_always_valid(self):
        # 3 sources but up to 10 connections could fit: the series
        # terminates at k=3 so this is fine.
        TrafficClass.bernoulli(3, 0.2).validate_for(10, 10)

    def test_non_integer_sources_rejected_when_rate_goes_negative(self):
        cls = TrafficClass(alpha=0.35, beta=-0.1)  # 3.5 sources
        with pytest.raises(InvalidParameterError):
            cls.validate_for(10, 10)

    def test_non_integer_sources_ok_on_small_switch(self):
        cls = TrafficClass(alpha=0.35, beta=-0.1)  # 3.5 sources
        cls.validate_for(3, 3)  # k <= 3, rate stays non-negative

    def test_poisson_always_valid(self):
        TrafficClass.poisson(100.0).validate_for(2, 2)


class TestPeakednessInterpretation:
    """The Z-factor tripartition the paper builds the model around."""

    def test_smooth_has_z_below_one(self):
        assert TrafficClass.bernoulli(10, 0.01).peakedness < 1.0

    def test_poisson_has_z_one(self):
        assert TrafficClass.poisson(0.5).peakedness == pytest.approx(1.0)

    def test_peaky_has_z_above_one(self):
        assert TrafficClass(alpha=0.1, beta=0.4).peakedness > 1.0

    def test_peakedness_matches_infinite_server_simulation_formula(self):
        cls = TrafficClass(alpha=0.3, beta=0.2, mu=2.0)
        # Z = mu/(mu - beta)
        assert cls.peakedness == pytest.approx(2.0 / 1.8)

    def test_mean_on_infinite_server(self):
        cls = TrafficClass(alpha=0.3, beta=0.2, mu=2.0)
        assert bpp_mean(cls.alpha, cls.beta, cls.mu) == pytest.approx(
            0.3 / 1.8
        )
