"""Self-healing fleet: failover routing, backoff, dead-shard surface.

The PR-8 ladder, bottom to top:

* **ring preference** — every key carries a deterministic failover
  order (owner first, then its clockwise successors on the ring), so
  re-routing around a down shard is exactly the rebalance removing the
  slot from the ring would produce;
* **pool hygiene** — the router's keep-alive pools flush on worker
  death (never replay a crash against a corpse socket) and retire on
  shard death;
* **backoff** — respawn delays grow exponentially with deterministic
  per-(shard, generation) jitter, so a seeded chaos rerun sees the
  identical schedule;
* **dead shard** — ``max_respawns`` exhaustion (or ``respawn=False``)
  is terminal and observable everywhere: ``/cluster`` state, a non-200
  ``/healthz``, the ``repro_cluster_shard_dead`` gauge — while the
  dead slot's keys keep answering through live peers with an
  ``X-Shard-Failover`` stamp and byte-identical results.
"""

from __future__ import annotations

import json
import os
import signal
import time
from http.client import HTTPConnection

import pytest

pytestmark = pytest.mark.service  # spawns worker processes

from repro.api import SolveRequest
from repro.core.traffic import TrafficClass
from repro.service import (
    ClusterConfig,
    ServiceClient,
    ServiceConfig,
    start_cluster_in_thread,
)
from repro.service.cluster import ClusterSupervisor, _WorkerPool
from repro.service.sharding import HashRing

REQUESTS = [
    SolveRequest.square(
        n,
        [
            TrafficClass.poisson(0.002, name="data"),
            TrafficClass(alpha=0.001, beta=0.0005, name="video"),
        ],
    )
    for n in (4, 5, 6, 7)
]


def solution_bytes(fragment: dict) -> str:
    record = dict(fragment)
    record.pop("from_cache", None)
    return json.dumps(record, sort_keys=True)


def wire_solve(
    host: str, port: int, request: SolveRequest
) -> tuple[int, int | None, int | None, dict]:
    """(status, shard, failed-over-from, envelope) for one /solve."""
    connection = HTTPConnection(host, port, timeout=30.0)
    try:
        connection.request(
            "POST", "/solve",
            body=json.dumps({"request": request.to_dict()}).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        raw = response.read()
        shard = response.getheader("X-Shard")
        failover = response.getheader("X-Shard-Failover")
        return (
            response.status,
            int(shard) if shard is not None else None,
            int(failover) if failover is not None else None,
            json.loads(raw.decode()),
        )
    finally:
        connection.close()


def raw_healthz(host: str, port: int) -> tuple[int, dict]:
    connection = HTTPConnection(host, port, timeout=30.0)
    try:
        connection.request("GET", "/healthz")
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        connection.close()


# ----------------------------------------------------------------------
# Ring preference
# ----------------------------------------------------------------------


def test_preference_starts_at_owner_and_covers_every_shard():
    ring = HashRing(4)
    for request in REQUESTS:
        order = ring.preference(request.cache_key)
        assert order[0] == ring.shard_for(request.cache_key)
        assert sorted(order) == [0, 1, 2, 3]


def test_preference_is_deterministic_and_single_shard_trivial():
    ring = HashRing(3)
    key = REQUESTS[0].cache_key
    assert ring.preference(key) == ring.preference(key)
    assert HashRing(1).preference(key) == (0,)


# ----------------------------------------------------------------------
# Pool hygiene (satellite: stale sockets across respawns)
# ----------------------------------------------------------------------


class _FakeWriter:
    def __init__(self) -> None:
        self.closed = False

    def is_closing(self) -> bool:
        return self.closed

    def close(self) -> None:
        self.closed = True


def test_worker_pool_flush_drops_idle_but_stays_usable():
    pool = _WorkerPool("127.0.0.1", 9)
    first, second = _FakeWriter(), _FakeWriter()
    pool.release(None, first)
    pool.release(None, second)
    pool.flush()
    assert first.closed and second.closed
    assert pool._idle == []
    third = _FakeWriter()
    pool.release(None, third)  # still pools after a flush
    assert not third.closed and len(pool._idle) == 1


def test_worker_pool_close_is_terminal():
    pool = _WorkerPool("127.0.0.1", 9)
    pooled = _FakeWriter()
    pool.release(None, pooled)
    pool.close()
    assert pooled.closed
    late = _FakeWriter()
    pool.release(None, late)  # released mid-respawn: closed, not cached
    assert late.closed and pool._idle == []


def test_worker_pool_never_caches_closing_writers():
    pool = _WorkerPool("127.0.0.1", 9)
    dying = _FakeWriter()
    dying.closed = True
    pool.release(None, dying)
    assert pool._idle == []


# ----------------------------------------------------------------------
# Respawn backoff
# ----------------------------------------------------------------------


def test_respawn_delay_is_deterministic_bounded_exponential():
    config = ServiceConfig(
        port=0,
        cluster=ClusterConfig(
            workers=2, respawn_backoff_base=0.1, respawn_backoff_cap=2.0
        ),
    )
    supervisor = ClusterSupervisor(config)
    try:
        base, cap = 0.1, 2.0
        for generation in range(8):
            delay = supervisor._respawn_delay(0, generation)
            assert delay == supervisor._respawn_delay(0, generation)
            raw = min(cap, base * 2 ** generation)
            assert raw <= delay < raw * 1.25
        # Jitter decorrelates slots felled by the same fault.
        assert (
            supervisor._respawn_delay(0, 3)
            != supervisor._respawn_delay(1, 3)
        )
    finally:
        supervisor._ready.close()


def test_cluster_config_rejects_bad_resilience_knobs():
    from repro.exceptions import ConfigurationError

    for bad in (
        {"respawn_backoff_base": 0.0},
        {"respawn_backoff_base": 1.0, "respawn_backoff_cap": 0.5},
        {"flap_window": 0.0},
        {"flap_threshold": 0},
        {"flap_cooldown": -1.0},
        {"proxy_timeout": 0.0},
    ):
        with pytest.raises(ConfigurationError):
            ClusterConfig(workers=2, **bad)
    # None disables the proxy bound (TOML/env spell it as 0).
    assert ClusterConfig(workers=2, proxy_timeout=None).proxy_timeout \
        is None


# ----------------------------------------------------------------------
# Client map refresh (satellite: stale maps after repeated failures)
# ----------------------------------------------------------------------


def test_client_refreshes_map_after_repeated_shard_failures(monkeypatch):
    client = ServiceClient("127.0.0.1", 9)
    client._cluster = {"strategy": "hash"}
    refreshes: list[bool] = []
    monkeypatch.setattr(
        client, "cluster_map",
        lambda refresh=False: refreshes.append(refresh) or {},
    )
    client._note_shard_failure(0)
    assert refreshes == [] and client.shard_failures[0] == 1
    client._note_shard_failure(0)
    assert refreshes == [True]
    assert client.map_refreshes == 1
    assert client.shard_failures[0] == 0  # counter reset after refresh
    client._note_shard_failure(1)  # other shards track independently
    assert refreshes == [True]


def test_client_never_probes_map_for_non_clusters(monkeypatch):
    client = ServiceClient("127.0.0.1", 9)
    client._cluster = False  # probed: plain daemon
    monkeypatch.setattr(
        client, "cluster_map",
        lambda refresh=False: pytest.fail("must not re-probe"),
    )
    for _ in range(5):
        client._note_shard_failure(None)


# ----------------------------------------------------------------------
# Dead shard, end to end
# ----------------------------------------------------------------------


def test_dead_shard_fails_over_and_is_surfaced_everywhere(tmp_path):
    """Kill one of two workers with respawn disabled: its keys fail
    over to the peer (byte-identical, stamped), and the dead slot is
    visible on /cluster, /healthz (non-200) and the dead gauge."""
    config = ServiceConfig(
        port=0,
        cluster=ClusterConfig(
            workers=2,
            cache_dir=str(tmp_path),
            health_interval=0.05,
            respawn=False,
        ),
    )
    with start_cluster_in_thread(config) as handle:
        client = ServiceClient(*handle.address)
        chart = client.cluster_map()
        ring = HashRing(chart["workers"], chart["hash_replicas"])
        request = REQUESTS[0]
        owner = ring.shard_for(request.cache_key)
        peer = 1 - owner
        assert ring.preference(request.cache_key) == (owner, peer)

        status, shard, failover, envelope = wire_solve(
            *handle.address, request
        )
        assert (status, shard, failover) == (200, owner, None)
        expected = solution_bytes(envelope["result"])

        victim = next(
            entry for entry in chart["shards"]
            if entry["shard"] == owner
        )
        os.kill(victim["pid"], signal.SIGKILL)

        deadline = time.monotonic() + 30.0
        while True:
            chart = client.cluster_map(refresh=True)
            entry = next(
                e for e in chart["shards"] if e["shard"] == owner
            )
            if entry["dead"]:
                break
            assert time.monotonic() < deadline, "death never declared"
            time.sleep(0.05)

        # /cluster: first-class dead state.
        assert entry["state"] == "dead"
        assert chart["dead_shards"] == [owner]
        assert chart["failover"] is True

        # The dead slot's keys answer through the live peer,
        # byte-identically, with the detour stamped.
        status, shard, failover, envelope = wire_solve(
            *handle.address, request
        )
        assert (status, shard, failover) == (200, peer, owner)
        assert solution_bytes(envelope["result"]) == expected

        chart = client.cluster_map(refresh=True)
        entry = next(
            e for e in chart["shards"] if e["shard"] == owner
        )
        assert entry["failovers"] >= 1

        # /healthz: non-200 with the dead slot called out.
        status, payload = raw_healthz(*handle.address)
        assert status == 503
        assert payload["status"] == "degraded"
        assert payload["dead_shards"] == [owner]
        dead_entry = next(
            w for w in payload["workers"] if w["shard"] == owner
        )
        assert dead_entry["status"] == "dead"
        # One of two shards dead: survivors absorb 1/1 extra load.
        assert payload["fleet_pressure"] == pytest.approx(1.0)

        # ServiceClient.health() returns the degraded report (a 503
        # from a health probe is an answer, not a rejection).
        report = client.health()
        assert report["status"] == "degraded"
        assert report["dead_shards"] == [owner]

        # /metrics: the gauge and the failover counter.
        assert client.metric_value(
            "repro_cluster_shard_dead", shard=str(owner)
        ) == 1.0
        assert client.metric_value(
            "repro_cluster_shard_dead", shard=str(peer)
        ) == 0.0
        assert client.metric_value(
            "repro_cluster_failover_total", shard=str(owner)
        ) >= 1.0

        # The survivor sees the fleet pressure the router stamps on
        # every proxied request; brownout's "fleet" component caps it
        # at breaker_pressure (holds degraded stages, never sheds on
        # its own).
        peer_request = next(
            r for r in REQUESTS
            if ring.shard_for(r.cache_key) == peer
        )
        wire_solve(*handle.address, peer_request)
        assert client.metric_value(
            "repro_service_brownout_pressure",
            shard=str(peer), component="fleet",
        ) == pytest.approx(0.6)
