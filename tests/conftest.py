"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass


@pytest.fixture
def small_dims() -> SwitchDimensions:
    """A switch small enough for brute force but non-square."""
    return SwitchDimensions(5, 7)


@pytest.fixture
def mixed_classes() -> list[TrafficClass]:
    """One class of each BPP kind, including a multi-rate one."""
    return [
        TrafficClass.poisson(0.2, name="poisson"),
        TrafficClass(alpha=0.1, beta=0.3, mu=1.5, a=2, name="pascal"),
        TrafficClass.bernoulli(4, 0.05, name="bernoulli"),
    ]


@pytest.fixture
def poisson_only() -> list[TrafficClass]:
    """Two Poisson classes with different rates and weights."""
    return [
        TrafficClass.poisson(0.15, weight=2.0, name="voice"),
        TrafficClass.poisson(0.05, a=2, weight=0.5, name="video"),
    ]


def assert_close(a: float, b: float, rel: float = 1e-10, abs_tol: float = 1e-12):
    """Relative/absolute closeness with a readable failure message."""
    scale = max(abs(a), abs(b), abs_tol)
    assert abs(a - b) <= max(rel * scale, abs_tol), f"{a} != {b} (diff {a - b})"
