"""Shared fixtures, hypothesis profiles and helpers for the test suite.

Hypothesis settings live HERE, not in per-file ``@settings`` decorators
(which historically drifted between 15 and 50 examples per test with no
rationale).  Three profiles:

* ``ci`` (default) — 25 examples, derandomized so CI failures are
  reproducible without a seed hunt, no deadline (solver calls can
  legitimately take hundreds of ms on a loaded runner);
* ``dev`` — 10 examples for a fast local loop;
* ``nightly`` — 200 examples for scheduled deep runs.

Select with ``HYPOTHESIS_PROFILE=dev pytest ...``.  The one deliberate
exception is :data:`POOL_SETTINGS` for tests that spin up process
pools, where even a handful of examples dominates suite wall-clock.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass

settings.register_profile(
    "ci", max_examples=25, derandomize=True, deadline=None
)
settings.register_profile("dev", max_examples=10, deadline=None)
settings.register_profile("nightly", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

#: For property tests that launch a process pool per example: the pool
#: spawn dominates, so the example count stays tiny in every profile.
POOL_SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture
def small_dims() -> SwitchDimensions:
    """A switch small enough for brute force but non-square."""
    return SwitchDimensions(5, 7)


@pytest.fixture
def mixed_classes() -> list[TrafficClass]:
    """One class of each BPP kind, including a multi-rate one."""
    return [
        TrafficClass.poisson(0.2, name="poisson"),
        TrafficClass(alpha=0.1, beta=0.3, mu=1.5, a=2, name="pascal"),
        TrafficClass.bernoulli(4, 0.05, name="bernoulli"),
    ]


@pytest.fixture
def poisson_only() -> list[TrafficClass]:
    """Two Poisson classes with different rates and weights."""
    return [
        TrafficClass.poisson(0.15, weight=2.0, name="voice"),
        TrafficClass.poisson(0.05, a=2, weight=0.5, name="video"),
    ]


def assert_close(a: float, b: float, rel: float = 1e-10, abs_tol: float = 1e-12):
    """Relative/absolute closeness with a readable failure message."""
    scale = max(abs(a), abs(b), abs_tol)
    assert abs(a - b) <= max(rel * scale, abs_tol), f"{a} != {b} (diff {a - b})"
