"""Tests for the paper's scenario definitions and sweep helpers.

These encode the *qualitative reproduction criteria*: the orderings,
monotonicities and magnitude relations the paper's Section 7 reports.
Exact-value anchors live in ``test_paper_values.py``.
"""

from __future__ import annotations

import math

import pytest

from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError
from repro.workloads import (
    TABLE1_PAPER,
    figure1,
    figure2,
    figure3,
    figure4,
    find_load_for_blocking,
    find_size_for_blocking,
    sweep_parameter,
    sweep_sizes,
    table1_rows,
    table2_rows,
)

SIZES = (1, 2, 4, 8, 16, 32)  # fast subset for unit tests


class TestFigure1:
    """Smooth traffic: Poisson upper-bounds Bernoulli curves."""

    @pytest.fixture(scope="class")
    def fig(self):
        return figure1(sizes=SIZES)

    def test_poisson_is_upper_bound(self, fig):
        poisson = fig.curve("poisson").values
        for curve in fig.curves[1:]:
            for p, b in zip(poisson, curve.values):
                assert b <= p + 1e-15

    def test_blocking_decreases_with_smoothness(self, fig):
        """More negative beta~ (smoother) -> lower blocking, pointwise."""
        for i in range(len(fig.curves) - 1):
            upper = fig.curves[i].values
            lower = fig.curves[i + 1].values
            for u, v in zip(upper[2:], lower[2:]):
                assert v <= u + 1e-15

    def test_effect_is_small(self, fig):
        """The paper: smooth traffic only perturbs blocking by ~0.1%."""
        poisson = fig.curve("poisson").values[-1]
        smoothest = fig.curves[-1].values[-1]
        assert abs(poisson - smoothest) / poisson < 0.005

    def test_operating_point_near_half_percent(self, fig):
        """alpha~ = .0024 was chosen for ~99.5% non-blocking."""
        for value in fig.curve("poisson").values:
            assert 0.001 < value < 0.01


class TestFigure2:
    """Peaky traffic: dramatic blocking increase with beta~."""

    @pytest.fixture(scope="class")
    def fig(self):
        return figure2(sizes=SIZES)

    def test_blocking_increases_with_peakedness(self, fig):
        for i in range(len(fig.curves) - 1):
            lower = fig.curves[i].values
            upper = fig.curves[i + 1].values
            for u, v in zip(lower[2:], upper[2:]):
                assert v >= u - 1e-15

    def test_dramatic_impact_at_large_n(self):
        """At N = 128 the most peaky curve far exceeds Poisson —
        the paper's headline contrast between Figures 1 and 2."""
        fig = figure2(sizes=(128,))
        poisson = fig.curve("poisson").values[0]
        peaky = fig.curves[-1].values[0]
        smooth_spread = 0.005 * poisson  # Figure 1's effect size
        assert (peaky - poisson) > 10 * smooth_spread

    def test_poisson_curve_matches_figure1(self):
        f1 = figure1(sizes=SIZES).curve("poisson").values
        f2 = figure2(sizes=SIZES).curve("poisson").values
        assert f1 == pytest.approx(f2)


class TestFigure3:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure3(sizes=SIZES)

    def test_adding_poisson_class_shifts_operating_point_up(self, fig):
        """R1+R2 carries twice the load of R2 alone: higher blocking."""
        for beta in ("0.0012", "0.0024"):
            alone = fig.curve(f"R2 only, beta~={beta}").values
            mixed = fig.curve(f"R1+R2, beta~={beta}").values
            for a, m in zip(alone[1:], mixed[1:]):
                assert m > a

    def test_burstiness_effect_similar_at_both_operating_points(self, fig):
        """The paper: beta~ causes the same relative change in blocking
        regardless of the operating point (checked to ~30%)."""
        idx = len(SIZES) - 1
        alone_low = fig.curve("R2 only, beta~=0.0012").values[idx]
        alone_high = fig.curve("R2 only, beta~=0.0024").values[idx]
        mixed_low = fig.curve("R1+R2, beta~=0.0012").values[idx]
        mixed_high = fig.curve("R1+R2, beta~=0.0024").values[idx]
        rel_alone = (alone_high - alone_low) / alone_low
        rel_mixed = (mixed_high - mixed_low) / mixed_low
        assert rel_mixed == pytest.approx(rel_alone, rel=0.5)


class TestFigure4:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure4()

    def test_wide_class_blocks_much_more(self, fig):
        narrow = fig.curves[0].values
        wide = fig.curves[1].values
        for n_val, w_val in zip(narrow, wide):
            assert w_val > 5 * n_val

    def test_both_decrease_with_size(self, fig):
        for curve in fig.curves:
            values = curve.values
            assert all(a > b for a, b in zip(values, values[1:]))


class TestTable1:
    def test_formula_matches_printed_values(self):
        for n, printed1, formula1, printed2, formula2 in table1_rows():
            assert formula1 == pytest.approx(printed1, rel=5e-3)
            assert formula2 == pytest.approx(printed2, rel=5e-3)

    def test_covers_figure4_sizes(self):
        assert sorted(TABLE1_PAPER) == [4, 8, 16, 32, 64]


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2_rows(0, sizes=(1, 2, 8, 32))

    def test_gradient_rho_positive_and_scales_with_n_squared(self, rows):
        by_n = {r["N"]: r for r in rows}
        assert by_n[32]["dW_drho1"] > 0
        ratio = by_n[32]["dW_drho1"] / by_n[8]["dW_drho1"]
        assert ratio == pytest.approx(16.0, rel=0.05)

    def test_burstiness_gradient_negative_beyond_small_n(self, rows):
        by_n = {r["N"]: r for r in rows}
        assert by_n[8]["dW_dburstiness2"] < 0
        assert by_n[32]["dW_dburstiness2"] < by_n[8]["dW_dburstiness2"]

    def test_revenue_grows_linearly_with_n(self, rows):
        by_n = {r["N"]: r for r in rows}
        assert by_n[32]["revenue"] == pytest.approx(
            4 * by_n[8]["revenue"], rel=0.01
        )

    def test_paper_values_attached(self, rows):
        for row in rows:
            assert row["paper_blocking"] is not None

    def test_increasing_rho2_raises_blocking_more_than_beta2(self):
        """Paper: raising alpha~2 hurts more than the same raise in
        beta~2 (third vs second parameter set)."""
        n = 32
        base = table2_rows(0, sizes=(n,))[0]["blocking"]
        more_beta = table2_rows(1, sizes=(n,))[0]["blocking"]
        more_rho = table2_rows(2, sizes=(n,))[0]["blocking"]
        assert more_rho - base > more_beta - base > 0


class TestSweepHelpers:
    def test_sweep_sizes(self):
        result = sweep_sizes(
            (2, 4),
            lambda n: [TrafficClass.from_aggregate(0.01, 0.0, n2=n)],
            lambda sol: sol.blocking(0),
        )
        assert len(result) == 2
        assert result[0][0] == 2

    def test_sweep_parameter(self):
        result = sweep_parameter(
            (0.1, 0.2),
            lambda rho: (
                SwitchDimensions(4, 4), [TrafficClass.poisson(rho)]
            ),
            lambda sol: sol.blocking(0),
        )
        assert result[1][1] > result[0][1]

    def test_find_size_for_blocking(self):
        # Spread a fixed total offered load over the whole fabric:
        # per-port utilization then falls like 1/n and blocking with it.
        def fixed_total(n):
            return [TrafficClass.poisson(0.2 / n**2)]

        n = find_size_for_blocking(fixed_total, 0.01, n_max=128)
        dims = SwitchDimensions.square(n)
        from repro.core.convolution import solve_convolution

        assert solve_convolution(dims, fixed_total(n)).blocking(0) <= 0.01
        if n > 1:
            smaller = SwitchDimensions.square(n - 1)
            assert (
                solve_convolution(smaller, fixed_total(n - 1)).blocking(0)
                > 0.01
            )

    def test_find_load_for_blocking(self):
        from repro.core.convolution import solve_convolution

        dims = SwitchDimensions.square(6)

        def classes_for(rho):
            return [TrafficClass.poisson(rho)]

        rho = find_load_for_blocking(dims, classes_for, 0.05)
        assert solve_convolution(dims, classes_for(rho)).blocking(
            0
        ) == pytest.approx(0.05, abs=1e-6)

    def test_find_load_target_already_exceeded(self):
        dims = SwitchDimensions.square(4)

        def classes_for(rho):
            # constant heavy background regardless of the knob
            return [TrafficClass.poisson(2.0 + rho)]

        with pytest.raises(ConfigurationError):
            find_load_for_blocking(dims, classes_for, 0.001)

    def test_find_load_unbounded_capacity(self):
        dims = SwitchDimensions.square(4)

        def classes_for(rho):
            return [TrafficClass.poisson(rho)]

        # absurdly loose target: the cap load_max is returned
        value = find_load_for_blocking(
            dims, classes_for, 0.999999, load_max=10.0
        )
        assert value == 10.0

    def test_find_size_rejects_bad_target(self):
        with pytest.raises(ConfigurationError):
            find_size_for_blocking(
                lambda n: [TrafficClass.poisson(0.1)], 1.5
            )

    def test_find_size_unreachable_target(self):
        with pytest.raises(ConfigurationError):
            find_size_for_blocking(
                lambda n: [TrafficClass.poisson(10.0)], 1e-9, n_max=4
            )


def _reference_find_size(classes_for, target, r=0, n_min=1, n_max=64):
    """The pre-engine algorithm: bisection with one full solve per probe."""
    from repro.core.convolution import solve_convolution

    def blocking(n):
        dims = SwitchDimensions.square(n)
        return solve_convolution(dims, classes_for(n)).blocking(r)

    assert blocking(n_max) <= target
    lo, hi = n_min, n_max
    while lo < hi:
        mid = (lo + hi) // 2
        if blocking(mid) <= target:
            hi = mid
        else:
            lo = mid + 1
    return lo


class TestFindSizeEngineEquivalence:
    """The shared-Q-grid ``find_size_for_blocking`` must return exactly
    what per-probe re-solving (the original implementation) returned."""

    def test_table1_configuration_answer_unchanged(self):
        # The paper's Table 1 traffic: the constant aggregate load
        # tau_2 = .0048 re-spread as rho~ = tau / C(n, 2) at every
        # candidate size (a size-dependent mix, the per-probe path) —
        # the same construction as figure4's a=2 series.
        from repro.core.convolution import solve_convolution
        from repro.workloads.scenarios import TABLE1_TAUS

        def classes_for(n):
            rho_tilde = TABLE1_TAUS[1] / math.comb(n, 2)
            return [
                TrafficClass.from_aggregate(
                    rho_tilde, 0.0, n2=n, a=2, name="tau2"
                )
            ]

        # A target strictly between the blocking at n=8 and n=32 so the
        # bisection has real work on the Table 1 size range.
        def blocking_at(n):
            return solve_convolution(
                SwitchDimensions.square(n), classes_for(n)
            ).blocking(0)

        b8, b32 = blocking_at(8), blocking_at(32)
        assert b32 < b8, "Table 1 blocking must fall with size"
        target = math.sqrt(b8 * b32)

        found = find_size_for_blocking(classes_for, target, n_max=64)
        expected = _reference_find_size(classes_for, target, n_max=64)
        assert found == expected
        assert 8 < found <= 32

    def test_constant_mix_served_from_one_grid(self):
        # A size-independent mix takes the shared-grid fast path: the
        # feasibility check solves the n_max Q-grid once, and every
        # bisection probe is an O(1) ratio read off it — the engine
        # records exactly one solve for the whole search.
        from repro.core.convolution import solve_convolution
        from repro.engine import (
            BatchSolver,
            EngineConfig,
            set_default_engine,
        )

        classes = [TrafficClass.poisson(0.001, name="data")]

        def classes_for(n):
            return classes

        # Per-pair load is constant, so blocking *rises* with size;
        # any target at or above the n_max blocking is feasible and the
        # bisection walks down to n_min.
        target = (
            solve_convolution(SwitchDimensions.square(32), classes)
            .blocking(0)
            * 1.000001
        )

        engine = BatchSolver(EngineConfig())
        previous = set_default_engine(engine)
        try:
            found = find_size_for_blocking(classes_for, target, n_max=32)
        finally:
            set_default_engine(previous)
        expected = _reference_find_size(classes_for, target, n_max=32)
        assert found == expected
        assert engine.stats.solves == 1, (
            "constant-mix bisection must be served by a single Q-grid solve"
        )
