"""Tests for the metamorphic invariant registry (repro.verify).

Each invariant encodes a paper identity (normalization constant,
blocking formula, MVA recursions, insensitivity, orderings) as an
executable check.  These tests pin the registry's contract — names,
selection, applicability guards — and prove each family of checks can
actually *fire* by planting a bug and watching it get caught.
"""

from __future__ import annotations

import pytest

from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.verify.generators import ConfigSampler, ModelConfig
from repro.verify.invariants import (
    INVARIANTS,
    check_invariants,
    invariant_names,
)

POISSON = ModelConfig(
    SwitchDimensions(4, 6), (TrafficClass.poisson(0.3),)
)
PASCAL = ModelConfig(
    SwitchDimensions(5, 5),
    (TrafficClass(alpha=0.1, beta=0.4, mu=1.0, a=1),),
)
MIXED = ModelConfig(
    SwitchDimensions(4, 5),
    (
        TrafficClass.poisson(0.2),
        TrafficClass(alpha=0.1, beta=0.3, mu=1.5, a=2),
        TrafficClass.bernoulli(4, 0.05),
    ),
)


class TestRegistry:
    def test_expected_invariants_registered(self):
        names = invariant_names()
        assert len(names) == len(set(names))
        for expected in (
            "normalization-series-identity",
            "series-closed-form",
            "blocking-identity",
            "mva-path-consistency",
            "mva-ratio-identity",
            "sub-dimension-consistency",
            "holding-time-insensitivity",
            "class-permutation-invariance",
            "poisson-bounds-smooth",
            "pascal-dominates-poisson",
            "blocking-monotone-in-alpha",
            "blocking-monotone-in-size",
        ):
            assert expected in names

    def test_every_invariant_cites_the_paper(self):
        for invariant in INVARIANTS.values():
            assert invariant.paper_ref, invariant.name
            assert invariant.description, invariant.name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            check_invariants(POISSON, names=["no-such-invariant"])

    def test_name_selection_restricts_the_run(self):
        # A selection of one invariant runs exactly that one (no
        # violations on a clean config either way).
        assert (
            check_invariants(POISSON, names=["holding-time-insensitivity"])
            == []
        )


class TestCleanConfigsPass:
    @pytest.mark.parametrize(
        "config", [POISSON, PASCAL, MIXED], ids=["poisson", "pascal", "mixed"]
    )
    def test_no_violations(self, config):
        violations = check_invariants(config)
        assert violations == [], [v.describe() for v in violations]

    def test_ordering_invariants_fire_single_class(self):
        # The orderings only apply single-class (mixes genuinely break
        # them); confirm the applicability guards see these configs.
        smooth = ModelConfig(
            SwitchDimensions(3, 3), (TrafficClass.bernoulli(5, 0.2),)
        )
        assert INVARIANTS["poisson-bounds-smooth"].applies(smooth)
        assert INVARIANTS["pascal-dominates-poisson"].applies(PASCAL)
        assert not INVARIANTS["poisson-bounds-smooth"].applies(MIXED)
        assert not INVARIANTS["pascal-dominates-poisson"].applies(MIXED)


@pytest.mark.fuzz
class TestInvariantsCatchPlantedBugs:
    def test_broken_mva_violates_mva_invariants(self, monkeypatch):
        from repro.core import mva

        real = mva.solve_mva

        def skewed(dims, classes):
            # Systematic parameter corruption: every class 0.5% hotter
            # than requested — the ratio identities must notice.
            classes = tuple(
                TrafficClass(
                    alpha=c.alpha * 1.005, beta=c.beta, mu=c.mu, a=c.a
                )
                for c in classes
            )
            return real(dims, classes)

        monkeypatch.setattr(mva, "solve_mva", skewed)
        violations = check_invariants(
            MIXED, names=["mva-ratio-identity"]
        )
        assert violations, "corrupted MVA passed the ratio identity"
        assert violations[0].invariant == "mva-ratio-identity"

    def test_broken_series_violates_closed_form(self, monkeypatch):
        from repro.core import generating

        real = generating.class_series

        def truncated(cls, count, *args, **kwargs):
            series = list(real(cls, count, *args, **kwargs))
            if len(series) > 2:
                series[-1] = 0.0  # drop the tail term
            return type(real(cls, count, *args, **kwargs))(series)

        monkeypatch.setattr(generating, "class_series", truncated)
        violations = check_invariants(
            PASCAL, names=["series-closed-form"]
        )
        assert violations, "truncated series passed the closed form"

    def test_fuzzed_stream_exercises_most_invariants(self):
        # 60 seeded configs: every invariant's applicability guard must
        # accept at least one (a registry entry that never runs is dead
        # weight the campaign cannot justify).
        sampler = ConfigSampler(seed=7, max_side=8)
        applied = set()
        for _ in range(60):
            config = sampler.sample()
            for invariant in INVARIANTS.values():
                try:
                    if invariant.applies(config):
                        applied.add(invariant.name)
                except Exception:
                    continue
        missing = set(invariant_names()) - applied
        assert not missing, f"never applicable in 60 draws: {missing}"
