"""Tests for Algorithm 2 (mean value analysis, paper Section 5.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.convolution import solve_convolution
from repro.core.mva import solve_mva
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError


def _cases():
    return [
        ("poisson", SwitchDimensions(6, 6), [TrafficClass.poisson(0.3)]),
        ("rect", SwitchDimensions(4, 9), [TrafficClass.poisson(0.5)]),
        ("pascal", SwitchDimensions(5, 5), [TrafficClass(alpha=0.1, beta=0.4)]),
        ("bernoulli", SwitchDimensions(6, 6), [TrafficClass.bernoulli(4, 0.1)]),
        (
            "mixed multirate",
            SwitchDimensions(8, 7),
            [
                TrafficClass.poisson(0.2),
                TrafficClass(alpha=0.05, beta=0.3, a=2),
                TrafficClass.bernoulli(5, 0.04, a=3),
            ],
        ),
    ]


class TestAgainstAlgorithm1:
    @pytest.mark.parametrize(
        "label,dims,classes", _cases(), ids=[c[0] for c in _cases()]
    )
    def test_h_grids_match(self, label, dims, classes):
        mva = solve_mva(dims, classes)
        conv = solve_convolution(dims, classes)
        for r in range(len(classes)):
            assert np.allclose(mva.h[r], conv.h[r], rtol=1e-10, atol=1e-300)

    @pytest.mark.parametrize(
        "label,dims,classes", _cases(), ids=[c[0] for c in _cases()]
    )
    def test_measures_match(self, label, dims, classes):
        mva = solve_mva(dims, classes)
        conv = solve_convolution(dims, classes)
        for r in range(len(classes)):
            assert mva.non_blocking(r) == pytest.approx(
                conv.non_blocking(r), rel=1e-10
            )
            assert mva.concurrency(r) == pytest.approx(
                conv.concurrency(r), rel=1e-10
            )
        assert mva.revenue() == pytest.approx(conv.revenue(), rel=1e-10)


class TestInternalConsistency:
    def test_two_path_factorizations_agree(self, small_dims, mixed_classes):
        solution = solve_mva(small_dims, mixed_classes)
        assert solution.grids.consistency_residual() < 1e-10

    def test_boundary_f_values(self):
        solution = solve_mva(SwitchDimensions(4, 4), [TrafficClass.poisson(0.2)])
        grids = solution.grids
        # F_1(n1, 0) = n1 (from Q(n1, 0) = 1/n1!)
        for m in range(1, 5):
            assert grids.f1[m, 0] == pytest.approx(m)
            assert grids.f2[0, m] == pytest.approx(m)

    def test_f_ratios_match_convolution_q(self):
        dims = SwitchDimensions(5, 4)
        classes = [TrafficClass.poisson(0.3), TrafficClass(alpha=0.1, beta=0.2)]
        mva = solve_mva(dims, classes)
        lq = solve_convolution(dims, classes).log_q
        import math

        for m1 in range(1, 6):
            for m2 in range(1, 5):
                expected = math.exp(lq[m1 - 1, m2] - lq[m1, m2])
                assert mva.grids.f1[m1, m2] == pytest.approx(
                    expected, rel=1e-10
                )

    def test_no_log_q_available(self):
        solution = solve_mva(SwitchDimensions(3, 3), [TrafficClass.poisson(0.1)])
        with pytest.raises(ConfigurationError):
            solution.log_g()


class TestLargeSystemStability:
    def test_matches_convolution_at_n128(self):
        """The numerical-stability point of Section 5.1: MVA stays
        accurate at sizes where unscaled Algorithm 1 has long since
        underflowed."""
        n = 128
        dims = SwitchDimensions.square(n)
        classes = [
            TrafficClass.from_aggregate(0.0024, 0.0012, n2=n, mu=1.0),
        ]
        mva = solve_mva(dims, classes)
        conv = solve_convolution(dims, classes)
        assert mva.blocking(0) == pytest.approx(conv.blocking(0), rel=1e-8)

    def test_values_stay_in_ratio_range(self):
        n = 64
        dims = SwitchDimensions.square(n)
        solution = solve_mva(dims, [TrafficClass.poisson(0.01)])
        grids = solution.grids
        finite = grids.f1[~np.isnan(grids.f1)]
        assert np.all(finite < 1e6)  # F ~ n, never factorial-sized


class TestErrors:
    def test_empty_classes_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_mva(SwitchDimensions(3, 3), [])

    def test_oversized_class_zeroed(self):
        dims = SwitchDimensions(2, 2)
        classes = [TrafficClass.poisson(0.2), TrafficClass.poisson(0.2, a=3)]
        solution = solve_mva(dims, classes)
        assert solution.non_blocking(1) == 0.0
        assert solution.concurrency(1) == 0.0
