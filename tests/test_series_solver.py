"""Tests for the diagonal occupancy-series solver."""

from __future__ import annotations

import pytest

from repro.core.convolution import solve_convolution
from repro.core.series_solver import solve_series
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError

CONFIGS = [
    pytest.param(
        SwitchDimensions(6, 6), [TrafficClass.poisson(0.3)], id="poisson"
    ),
    pytest.param(
        SwitchDimensions(4, 9),
        [
            TrafficClass.poisson(0.2, weight=2.0),
            TrafficClass(alpha=0.08, beta=0.3, weight=0.5),
        ],
        id="rect-mix",
    ),
    pytest.param(
        SwitchDimensions(8, 7),
        [
            TrafficClass.bernoulli(3, 0.15),
            TrafficClass.poisson(0.05, a=2),
            TrafficClass(alpha=0.02, beta=0.4, a=3),
        ],
        id="three-kinds-multirate",
    ),
    pytest.param(
        SwitchDimensions(12, 12),
        [TrafficClass.from_moments(mean=0.5, peakedness=0.75)],
        id="strong-smooth",
    ),
]


@pytest.mark.parametrize("dims,classes", CONFIGS)
class TestAgainstConvolution:
    def test_blocking_matches(self, dims, classes):
        series = solve_series(dims, classes)
        conv = solve_convolution(dims, classes)
        for r in range(len(classes)):
            assert series.non_blocking(r) == pytest.approx(
                conv.non_blocking(r), rel=1e-10, abs=1e-14
            )

    def test_concurrency_matches(self, dims, classes):
        series = solve_series(dims, classes)
        conv = solve_convolution(dims, classes)
        for r in range(len(classes)):
            assert series.concurrency(r) == pytest.approx(
                conv.concurrency(r), rel=1e-10, abs=1e-14
            )

    def test_revenue_matches(self, dims, classes):
        series = solve_series(dims, classes)
        conv = solve_convolution(dims, classes)
        assert series.revenue() == pytest.approx(
            conv.revenue(), rel=1e-10
        )

    def test_call_acceptance_matches(self, dims, classes):
        series = solve_series(dims, classes)
        conv = solve_convolution(dims, classes)
        for r in range(len(classes)):
            assert series.call_acceptance(r) == pytest.approx(
                conv.call_acceptance(r), rel=1e-10, abs=1e-14
            )

    def test_diagonal_reductions_match(self, dims, classes):
        series = solve_series(dims, classes)
        conv = solve_convolution(dims, classes)
        for depth in (1, 2):
            if dims.capacity - depth < 1:
                continue
            at = SwitchDimensions(dims.n1 - depth, dims.n2 - depth)
            for r in range(len(classes)):
                assert series.non_blocking(r, at_depth=depth) == (
                    pytest.approx(
                        conv.non_blocking(r, at=at), rel=1e-10, abs=1e-14
                    )
                )
            assert series.revenue(at_depth=depth) == pytest.approx(
                conv.revenue(at=at), rel=1e-10
            )


class TestScalability:
    def test_large_square_switch(self):
        """Fast at a size where the grid would be ~270k cells x R."""
        n = 512
        dims = SwitchDimensions.square(n)
        classes = [
            TrafficClass.from_aggregate(0.0024, 0.0, n2=n),
            TrafficClass.from_aggregate(0.0024, 0.0012, n2=n),
        ]
        series = solve_series(dims, classes)
        assert 0.0 < series.blocking(0) < 0.05
        assert series.utilization() < 0.1

    def test_table2_anchor(self):
        """Reproduces a Table 2 value the grid solver also produces."""
        n = 128
        dims = SwitchDimensions.square(n)
        classes = [
            TrafficClass.from_aggregate(0.0012, 0.0, n2=n),
            TrafficClass.from_aggregate(0.0012, 0.0012, n2=n),
        ]
        series = solve_series(dims, classes)
        conv = solve_convolution(dims, classes)
        assert series.blocking(0) == pytest.approx(
            conv.blocking(0), rel=1e-9
        )


class TestValidation:
    def test_empty_classes_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_series(SwitchDimensions(3, 3), [])

    def test_oversized_class_zeroed(self):
        dims = SwitchDimensions(2, 2)
        classes = [TrafficClass.poisson(0.1), TrafficClass.poisson(0.1, a=3)]
        series = solve_series(dims, classes)
        assert series.non_blocking(1) == 0.0
        assert series.concurrency(1) == 0.0

    def test_utilization_bounds(self):
        dims = SwitchDimensions(4, 4)
        series = solve_series(dims, [TrafficClass.poisson(5.0)])
        assert 0.0 <= series.utilization() <= 1.0