"""Shared hypothesis strategies for property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.robust.faults import FailureMask

dims_strategy = st.builds(
    SwitchDimensions,
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=1, max_value=7),
)


@st.composite
def traffic_class(draw, max_a: int = 2):
    kind = draw(st.sampled_from(["poisson", "pascal", "bernoulli"]))
    mu = draw(st.floats(min_value=0.5, max_value=2.0, allow_nan=False))
    a = draw(st.integers(min_value=1, max_value=max_a))
    if kind == "poisson":
        alpha = draw(st.floats(min_value=0.0, max_value=1.0))
        return TrafficClass(alpha=alpha, beta=0.0, mu=mu, a=a)
    if kind == "pascal":
        alpha = draw(st.floats(min_value=1e-3, max_value=1.0))
        beta = draw(st.floats(min_value=1e-3, max_value=0.4)) * mu
        return TrafficClass(alpha=alpha, beta=beta, mu=mu, a=a)
    sources = draw(st.integers(min_value=1, max_value=8))
    rate = draw(st.floats(min_value=1e-3, max_value=0.5))
    return TrafficClass.bernoulli(sources, rate, mu=mu, a=a)


classes_strategy = st.lists(traffic_class(), min_size=1, max_size=3)


@st.composite
def non_peaky_unit_class(draw):
    """A smooth or Poisson class with ``a = 1``.

    This is the regime where degraded-mode blocking is provably
    monotone in port failures (see ``docs/robustness.md``); Pascal
    peakedness and multi-rate geometry both admit counterexamples.
    """
    kind = draw(st.sampled_from(["poisson", "bernoulli"]))
    mu = draw(st.floats(min_value=0.5, max_value=2.0, allow_nan=False))
    if kind == "poisson":
        alpha = draw(st.floats(min_value=0.0, max_value=1.0))
        return TrafficClass(alpha=alpha, beta=0.0, mu=mu, a=1)
    sources = draw(st.integers(min_value=1, max_value=8))
    rate = draw(st.floats(min_value=1e-3, max_value=0.5))
    return TrafficClass.bernoulli(sources, rate, mu=mu, a=1)


non_peaky_classes_strategy = st.lists(
    non_peaky_unit_class(), min_size=1, max_size=3
)


@st.composite
def failure_mask_for(draw, dims: SwitchDimensions):
    """A random (possibly empty, possibly total) failure mask for ``dims``."""
    inputs = draw(
        st.sets(st.integers(min_value=0, max_value=dims.n1 - 1))
    )
    outputs = draw(
        st.sets(st.integers(min_value=0, max_value=dims.n2 - 1))
    )
    return FailureMask.from_ports(inputs, outputs)


@st.composite
def dims_and_mask(draw):
    """A switch plus a random failure mask that fits it."""
    dims = draw(dims_strategy)
    return dims, draw(failure_mask_for(dims))
