"""Shared hypothesis strategies for property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass

dims_strategy = st.builds(
    SwitchDimensions,
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=1, max_value=7),
)


@st.composite
def traffic_class(draw, max_a: int = 2):
    kind = draw(st.sampled_from(["poisson", "pascal", "bernoulli"]))
    mu = draw(st.floats(min_value=0.5, max_value=2.0, allow_nan=False))
    a = draw(st.integers(min_value=1, max_value=max_a))
    if kind == "poisson":
        alpha = draw(st.floats(min_value=0.0, max_value=1.0))
        return TrafficClass(alpha=alpha, beta=0.0, mu=mu, a=a)
    if kind == "pascal":
        alpha = draw(st.floats(min_value=1e-3, max_value=1.0))
        beta = draw(st.floats(min_value=1e-3, max_value=0.4)) * mu
        return TrafficClass(alpha=alpha, beta=beta, mu=mu, a=a)
    sources = draw(st.integers(min_value=1, max_value=8))
    rate = draw(st.floats(min_value=1e-3, max_value=0.5))
    return TrafficClass.bernoulli(sources, rate, mu=mu, a=a)


classes_strategy = st.lists(traffic_class(), min_size=1, max_size=3)
