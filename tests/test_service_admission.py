"""Admission control and coalescing edge cases of the daemon.

The gate is a blocked-calls-cleared loss system: under a seeded
overload the daemon must (a) never exceed its admission bound,
(b) clear the excess with structured 503s carrying a ``retry_after``
hint, and (c) report a ``/metrics`` blocking ratio that matches the
observed rejection count *exactly* — the gate counts every offered
request, so the ratio is a measurement, not an estimate.

The coalescing edge cases: identical requests racing across a
batch-window boundary must share the in-flight future; a coalesced
leader's terminal failure must resolve its followers with the same
``FailedResult`` (never hang them); and a client that disconnects
mid-request must not leak its gate tokens.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

pytestmark = pytest.mark.service  # spins up the solve-serving daemon

from repro.api import SolveRequest, solve
from repro.core.traffic import TrafficClass
from repro.engine import BatchSolver, EngineConfig, FailedResult, TaskAttempt
from repro.service import (
    AdmissionGate,
    AdmissionRejectedError,
    RemoteSolveError,
    ServiceClient,
    ServiceConfig,
    SolveService,
    start_in_thread,
)


def point_request(n: int = 4, rate: float = 0.01) -> SolveRequest:
    return SolveRequest.square(n, [TrafficClass.poisson(rate)])


# ----------------------------------------------------------------------
# Gate unit behaviour
# ----------------------------------------------------------------------


def test_gate_admits_until_capacity_then_clears():
    gate = AdmissionGate(3)
    leases = [gate.try_acquire("solve", 1) for _ in range(3)]
    assert all(lease is not None for lease in leases)
    assert gate.try_acquire("solve", 1) is None  # cleared, not queued
    assert gate.in_use == 3 and gate.peak_in_use == 3
    assert gate.offered == 4 and gate.rejected == 1
    gate.release(leases[0])
    assert gate.try_acquire("solve", 1) is not None
    snapshot = gate.snapshot()
    assert snapshot.blocking_ratio == 1 / 5


def test_gate_weighted_acquire_and_clamp():
    gate = AdmissionGate(4)
    assert gate.effective_weight(0) == 1
    assert gate.effective_weight(99) == 4  # a_r <= min(N1, N2)
    lease = gate.try_acquire("batch", 99)
    assert lease is not None and lease.weight == 4
    assert gate.try_acquire("solve", 1) is None  # full gate taken
    gate.release(lease)
    assert gate.in_use == 0


def test_gate_counts_by_class():
    gate = AdmissionGate(1)
    gate.try_acquire("solve", 1)
    gate.try_acquire("batch", 1)
    assert gate.offered_by_class() == {"solve": 1, "batch": 1}
    assert gate.rejected_by_class() == {"batch": 1}


# ----------------------------------------------------------------------
# Seeded overload: bound respected, structured 503s, exact metrics
# ----------------------------------------------------------------------


def test_overload_never_exceeds_bound_and_meters_exactly():
    capacity = 4
    handle = start_in_thread(
        ServiceConfig(
            port=0, gate_capacity=capacity, batch_window=0.001,
            min_hold=0.15,
        ),
        engine=BatchSolver(EngineConfig()),
    )
    try:
        client = ServiceClient(*handle.address)
        request = point_request()
        client.solve(request)  # warm the cache: holds are then ~min_hold

        admitted = rejected = 0
        lock = threading.Lock()

        def one_call(_index: int) -> None:
            nonlocal admitted, rejected
            try:
                client.solve(request)
            except AdmissionRejectedError as exc:
                with lock:
                    rejected += 1
                assert exc.retry_after > 0.0
                error = exc.payload["error"]
                assert error["kind"] == "admission_rejected"
                assert error["gate_capacity"] == capacity
                assert error["admission_class"] == "solve"
                assert 0.0 < error["blocking_ratio"] <= 1.0
            else:
                with lock:
                    admitted += 1

        # 24 concurrent callers against 4 tokens held ~150 ms each.
        with ThreadPoolExecutor(max_workers=24) as pool:
            list(pool.map(one_call, range(24)))

        assert admitted + rejected == 24
        assert rejected > 0, "overload must clear some calls"
        gate = handle.service.gate
        assert gate.peak_in_use <= capacity
        assert gate.in_use == 0  # everything released
        # Exact bookkeeping: the daemon saw exactly our requests.
        assert gate.offered == 25  # warmup + 24
        assert gate.rejected == rejected
        # /metrics reports the measured ratio exactly (repr round-trip).
        ratio = client.metric_value("repro_service_admission_blocking_ratio")
        assert ratio == gate.rejected / gate.offered
        assert client.metric_value(
            "repro_service_admission_rejected_total", **{"class": "solve"}
        ) == float(rejected)
        assert client.metric_value(
            "repro_service_admission_offered_total", **{"class": "solve"}
        ) == 25.0
    finally:
        handle.stop()


def test_503_carries_retry_after_header_and_hint():
    handle = start_in_thread(
        ServiceConfig(port=0, gate_capacity=1, batch_window=0.001,
                      min_hold=0.4, retry_after_floor=0.07),
        engine=BatchSolver(EngineConfig()),
    )
    try:
        client = ServiceClient(*handle.address)
        request = point_request()
        holder = threading.Thread(target=client.solve, args=(request,))
        holder.start()
        time.sleep(0.1)  # let the holder take the only token
        with pytest.raises(AdmissionRejectedError) as excinfo:
            client.solve(request)
        assert excinfo.value.retry_after >= 0.07
        holder.join()
    finally:
        handle.stop()


def test_batch_weight_scales_with_size():
    """A sweep takes one token per member, like multi-rate ``a_r``."""
    handle = start_in_thread(
        ServiceConfig(port=0, gate_capacity=8, batch_member_weight=1,
                      batch_window=0.001, min_hold=0.3),
        engine=BatchSolver(EngineConfig()),
    )
    try:
        client = ServiceClient(*handle.address)
        sweep = [point_request(n) for n in (4, 5, 6, 7, 8)]  # weight 5
        runner = threading.Thread(target=client.solve_many, args=(sweep,))
        runner.start()
        time.sleep(0.1)
        # 5 of 8 tokens held: a weight-4 batch must be cleared...
        with pytest.raises(AdmissionRejectedError):
            client.solve_many([point_request(n) for n in (4, 5, 6, 7)])
        # ...but a single point solve (weight 1) still fits.
        client.solve(point_request())
        runner.join()
        assert handle.service.gate.peak_in_use <= 8
    finally:
        handle.stop()


# ----------------------------------------------------------------------
# Identical requests racing across the batch-window boundary
# ----------------------------------------------------------------------


def test_identical_requests_race_across_window_boundary():
    """The follower arrives *after* the leader's window flushed — while
    the engine is still computing — and must join the open flight
    rather than start a second computation."""

    release = threading.Event()
    computed = []

    async def scenario() -> None:
        service = SolveService(
            ServiceConfig(port=0, batch_window=0.01),
            engine=BatchSolver(EngineConfig()),
        )
        local = solve(point_request())

        def gated_runner(requests):
            computed.append(list(requests))
            assert release.wait(5.0), "runner was never released"
            return [local for _ in requests]

        service.batcher._runner = gated_runner
        try:
            leader = asyncio.create_task(
                service._execute(point_request())
            )
            # Past the window: the leader's flush is now blocked inside
            # the runner, holding the flight open.
            await asyncio.sleep(0.08)
            assert len(computed) == 1
            follower = asyncio.create_task(
                service._execute(point_request())
            )
            await asyncio.sleep(0.02)
            release.set()
            (lead_result, lead_coalesced), (follow_result,
                                            follow_coalesced) = \
                await asyncio.gather(leader, follower)
            assert lead_coalesced is False
            assert follow_coalesced is True
            assert lead_result == follow_result == local
            assert len(computed) == 1, "follower must not recompute"
            assert service.flights.hits == 1
        finally:
            await service.batcher.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# A failing leader resolves its followers (no hangs)
# ----------------------------------------------------------------------


def test_failed_leader_resolves_followers_with_failed_result():
    request = point_request(5, 0.03)
    failure = FailedResult(
        request=request,
        error_type="ConvergenceError",
        error_message="injected terminal failure",
        attempts=(TaskAttempt(1, "error", 0.01, "injected"),),
    )
    handle = start_in_thread(
        ServiceConfig(port=0, batch_window=0.05),
        engine=BatchSolver(EngineConfig()),
    )
    try:
        def failing_runner(requests):
            time.sleep(0.3)  # keep the flight open for the followers
            return [failure for _ in requests]

        handle.service.batcher._runner = failing_runner
        client = ServiceClient(*handle.address)
        errors: list[Exception] = []

        def one_call(_index: int) -> None:
            try:
                client.solve(request)
            except Exception as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(one_call, range(6)))

        assert len(errors) == 6, "every caller must get an answer"
        for error in errors:
            assert isinstance(error, RemoteSolveError)
            assert error.failed.error_type == "ConvergenceError"
            assert error.failed.error_message == "injected terminal failure"
            assert error.failed.attempts[0].outcome == "error"
        assert handle.service.flights.hits >= 1, "followers coalesced"
        assert len(handle.service.flights) == 0, "flight evicted"
        assert handle.service.gate.in_use == 0, "all tokens released"
        assert client.metric_value(
            "repro_service_solve_failures_total"
        ) == 6.0
    finally:
        handle.stop()


# ----------------------------------------------------------------------
# Gate tokens release when the client disconnects
# ----------------------------------------------------------------------


def test_gate_releases_tokens_on_client_disconnect():
    handle = start_in_thread(
        ServiceConfig(port=0, gate_capacity=1, batch_window=0.001,
                      min_hold=0.25),
        engine=BatchSolver(EngineConfig()),
    )
    try:
        client = ServiceClient(*handle.address)
        request = point_request()
        client.solve(request)  # warm the cache

        body = json.dumps({"request": request.to_dict()}).encode()
        raw = (
            b"POST /solve HTTP/1.1\r\nHost: x\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n"
            + body
        )
        with socket.create_connection(handle.address, timeout=5.0) as sock:
            sock.sendall(raw)
        # Socket closed before the reply: the daemon still holds the
        # token for ~min_hold...
        time.sleep(0.1)
        with pytest.raises(AdmissionRejectedError):
            client.solve(request)
        # ...then releases it even though the reply could not be sent.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if handle.service.gate.in_use == 0:
                break
            time.sleep(0.02)
        assert handle.service.gate.in_use == 0
        result = client.solve(request)  # gate is free again
        assert result == solve(request)
    finally:
        handle.stop()
