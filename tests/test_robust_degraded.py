"""Degraded-mode analysis: reduced-switch measures and availability."""

from __future__ import annotations

import math

import pytest

from repro.core.convolution import solve_convolution
from repro.core.state import SwitchDimensions, permutation
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError, InvalidParameterError
from repro.robust import (
    FailureMask,
    PortFailureProcess,
    availability_weighted_measures,
    rerouted_classes,
    solve_degraded,
    validate_degraded_against_simulation,
)
from repro.robust.degraded import tuple_scale


@pytest.fixture
def dims() -> SwitchDimensions:
    return SwitchDimensions(6, 6)


@pytest.fixture
def classes() -> list[TrafficClass]:
    return [
        TrafficClass.poisson(0.1, name="poisson"),
        TrafficClass.bernoulli(8, 0.05, name="bernoulli"),
    ]


class TestTupleScale:
    def test_healthy_is_one(self, dims):
        assert tuple_scale(dims, dims, 1) == pytest.approx(1.0)
        assert tuple_scale(dims, dims, 2) == pytest.approx(1.0)

    def test_matches_permutation_ratio(self, dims):
        reduced = SwitchDimensions(4, 5)
        expected = (
            permutation(6, 2) * permutation(6, 2)
            / (permutation(4, 2) * permutation(5, 2))
        )
        assert tuple_scale(dims, reduced, 2) == pytest.approx(expected)

    def test_infinite_when_class_cannot_fit(self, dims):
        assert math.isinf(tuple_scale(dims, SwitchDimensions(1, 6), 2))


class TestReroutedClasses:
    def test_scales_alpha_and_beta(self, dims):
        cls = TrafficClass(alpha=0.02, beta=-0.01, mu=1.0, a=1)
        reduced = SwitchDimensions(3, 6)
        (scaled,) = rerouted_classes(dims, [cls], reduced)
        factor = tuple_scale(dims, reduced, 1)
        assert scaled.alpha == pytest.approx(cls.alpha * factor)
        assert scaled.beta == pytest.approx(cls.beta * factor)

    def test_saturated_when_too_wide(self, dims):
        cls = TrafficClass.poisson(0.1, a=2)
        assert rerouted_classes(dims, [cls], SwitchDimensions(1, 6)) == [None]

    def test_saturated_when_pascal_leaves_bpp_region(self, dims):
        # beta close to mu: any up-scaling pushes beta' >= mu.
        cls = TrafficClass(alpha=0.1, beta=0.9, mu=1.0, a=1)
        reduced = SwitchDimensions(2, 2)
        assert rerouted_classes(dims, [cls], reduced) == [None]


class TestSolveDegraded:
    def test_healthy_mask_matches_plain_solve(self, dims, classes):
        degraded = solve_degraded(dims, classes, FailureMask.none())
        full = solve_convolution(dims, classes)
        for r in range(len(classes)):
            assert degraded.blocking(r) == pytest.approx(full.blocking(r))
            assert degraded.concurrency(r) == pytest.approx(
                full.concurrency(r)
            )
            assert degraded.call_acceptance(r) == pytest.approx(
                full.call_acceptance(r)
            )

    def test_reroute_equals_reduced_switch_with_scaled_classes(
        self, dims, classes
    ):
        mask = FailureMask.from_ports(inputs=[0, 4], outputs=[1])
        degraded = solve_degraded(dims, classes, mask, routing="reroute")
        reduced_dims = mask.degraded_dims(dims)
        scaled = rerouted_classes(dims, classes, reduced_dims)
        reference = solve_convolution(reduced_dims, scaled)
        for r in range(len(classes)):
            assert degraded.blocking(r) == pytest.approx(
                reference.blocking(r)
            )
            assert degraded.concurrency(r) == pytest.approx(
                reference.concurrency(r)
            )

    def test_oblivious_routable_factor(self, dims, classes):
        mask = FailureMask.from_ports(inputs=[0], outputs=[3, 5])
        degraded = solve_degraded(dims, classes, mask, routing="oblivious")
        reduced_dims = mask.degraded_dims(dims)
        reference = solve_convolution(reduced_dims, classes)
        for r, cls in enumerate(classes):
            routable = 1.0 / tuple_scale(dims, reduced_dims, cls.a)
            assert degraded.blocking(r) == pytest.approx(
                1.0 - routable * reference.non_blocking(r)
            )
            assert degraded.call_acceptance(r) == pytest.approx(
                routable * reference.call_acceptance(r)
            )
            # Requests cleared at dead ports never touch the live
            # fabric, so concurrency is that of the unscaled sub-switch.
            assert degraded.concurrency(r) == pytest.approx(
                reference.concurrency(r)
            )

    def test_total_failure_saturates_everything(self, dims, classes):
        mask = FailureMask.from_ports(inputs=range(6))
        degraded = solve_degraded(dims, classes, mask)
        for r in range(len(classes)):
            assert degraded.saturated[r]
            assert degraded.blocking(r) == 1.0
            assert degraded.concurrency(r) == 0.0
            assert degraded.call_acceptance(r) == 0.0

    def test_call_congestion_complements_acceptance(self, dims, classes):
        mask = FailureMask.from_ports(outputs=[0])
        degraded = solve_degraded(dims, classes, mask)
        for r in range(len(classes)):
            assert degraded.call_congestion(r) == pytest.approx(
                1.0 - degraded.call_acceptance(r)
            )

    def test_render_mentions_saturation(self, dims):
        wide = TrafficClass.poisson(0.05, a=2, name="wide")
        mask = FailureMask.from_ports(inputs=range(5))
        text = solve_degraded(dims, [wide], mask).render()
        assert "SATURATED" in text
        assert "1x6" in text

    def test_rejects_bad_routing_and_empty_classes(self, dims, classes):
        with pytest.raises(ConfigurationError):
            solve_degraded(dims, classes, FailureMask.none(), routing="psychic")
        with pytest.raises(ConfigurationError):
            solve_degraded(dims, [], FailureMask.none())

    def test_rejects_mask_outside_switch(self, dims, classes):
        with pytest.raises(ConfigurationError):
            solve_degraded(
                dims, classes, FailureMask.from_ports(inputs=[6])
            )


class TestAvailabilityWeighted:
    def test_full_availability_equals_healthy(self, dims, classes):
        weighted = availability_weighted_measures(dims, classes, 1.0)
        full = solve_convolution(dims, classes)
        assert weighted.coverage == pytest.approx(1.0)
        for r in range(len(classes)):
            assert weighted.blocking[r] == pytest.approx(full.blocking(r))
            assert weighted.concurrency[r] == pytest.approx(
                full.concurrency(r)
            )

    def test_zero_availability_blocks_everything(self, dims, classes):
        weighted = availability_weighted_measures(dims, classes, 0.0)
        for r in range(len(classes)):
            assert weighted.blocking[r] == pytest.approx(1.0)
            assert weighted.concurrency[r] == pytest.approx(0.0)

    def test_lower_availability_worsens_poisson_blocking(self, dims):
        classes = [TrafficClass.poisson(0.1)]
        high = availability_weighted_measures(dims, classes, 0.99)
        low = availability_weighted_measures(dims, classes, 0.8)
        assert low.blocking[0] > high.blocking[0]

    def test_accepts_processes(self, dims, classes):
        process = PortFailureProcess(mtbf=99.0, mttr=1.0)
        via_process = availability_weighted_measures(dims, classes, process)
        via_float = availability_weighted_measures(
            dims, classes, process.availability
        )
        assert via_process.blocking == pytest.approx(via_float.blocking)

    def test_oblivious_and_reroute_agree_at_full_availability(
        self, dims, classes
    ):
        reroute = availability_weighted_measures(
            dims, classes, 1.0, routing="reroute"
        )
        oblivious = availability_weighted_measures(
            dims, classes, 1.0, routing="oblivious"
        )
        assert reroute.blocking == pytest.approx(oblivious.blocking)

    def test_coverage_reported_when_tail_truncates(self, dims, classes):
        weighted = availability_weighted_measures(
            dims, classes, 0.9, tail=1e-3
        )
        assert 0.9 < weighted.coverage < 1.0

    def test_rejects_bad_availability(self, dims, classes):
        with pytest.raises(InvalidParameterError):
            availability_weighted_measures(dims, classes, 1.5)

    def test_render(self, dims, classes):
        text = availability_weighted_measures(dims, classes, 0.95).render()
        assert "A_in=0.95" in text
        assert "poisson" in text


@pytest.mark.slow
class TestAgainstSimulation:
    def test_acceptance_within_ci_on_two_class_config(self):
        # The PR's acceptance criterion: on a <= 8x8 switch with two
        # classes, the fault-injected simulator's acceptance ratio
        # agrees with the degraded-mode analysis within the 95% CI.
        dims = SwitchDimensions(6, 6)
        classes = [
            TrafficClass.poisson(0.12, name="poisson"),
            TrafficClass.bernoulli(10, 0.04, name="bernoulli"),
        ]
        mask = FailureMask.from_ports(inputs=[0, 3], outputs=[5])
        result = validate_degraded_against_simulation(
            dims, classes, mask,
            horizon=1500.0, warmup=150.0, replications=8, seed=11,
        )
        assert result["covered"], result["classes"]

    def test_oblivious_acceptance_within_ci(self):
        dims = SwitchDimensions(5, 5)
        classes = [TrafficClass.poisson(0.15, name="poisson")]
        mask = FailureMask.from_ports(inputs=[2], outputs=[0])
        result = validate_degraded_against_simulation(
            dims, classes, mask,
            horizon=1500.0, warmup=150.0, replications=8, seed=5,
            routing="oblivious",
        )
        assert result["covered"], result["classes"]
