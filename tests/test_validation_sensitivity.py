"""Tests for the self-validation report and blocking elasticities."""

from __future__ import annotations

import pytest

from repro.core.sensitivity import (
    blocking_elasticity_matrix,
    blocking_gradient,
)
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError
from repro.validation import cross_validate


class TestCrossValidate:
    def test_small_config_runs_all_methods(self, small_dims, mixed_classes):
        report = cross_validate(small_dims, mixed_classes)
        assert report.consistent
        assert {"convolution/log", "mva", "series", "exact",
                "brute-force", "ctmc"} <= set(report.methods)
        assert not report.skipped

    def test_large_config_skips_enumeration(self):
        dims = SwitchDimensions.square(64)
        classes = [
            TrafficClass.poisson(0.001, name="a"),
            TrafficClass.poisson(0.0005, name="b"),
            TrafficClass.poisson(0.0002, name="c"),
        ]
        report = cross_validate(dims, classes)
        assert report.consistent
        skipped_methods = {name for name, _ in report.skipped}
        assert {"exact", "brute-force", "ctmc"} <= skipped_methods
        assert "series" in report.methods

    def test_unstable_smooth_regime_skips_mva(self):
        dims = SwitchDimensions.square(32)
        classes = [TrafficClass.from_moments(0.5, peakedness=0.75)]
        report = cross_validate(dims, classes)
        assert report.consistent  # the remaining methods agree
        skipped_methods = {name for name, _ in report.skipped}
        assert "mva" in skipped_methods

    def test_render_mentions_verdict(self, small_dims, mixed_classes):
        text = cross_validate(small_dims, mixed_classes).render()
        assert "CONSISTENT" in text
        assert "worst relative deviation" in text


class TestBlockingElasticities:
    def test_all_entries_nonnegative(self):
        dims = SwitchDimensions(5, 5)
        classes = [
            TrafficClass.poisson(0.2, name="a"),
            TrafficClass.poisson(0.1, a=2, name="b"),
        ]
        matrix = blocking_elasticity_matrix(dims, classes)
        for row in matrix:
            for entry in row:
                assert entry >= -1e-9

    def test_own_load_elasticity_positive(self):
        dims = SwitchDimensions(4, 4)
        classes = [TrafficClass.poisson(0.3)]
        matrix = blocking_elasticity_matrix(dims, classes)
        assert matrix[0][0] > 0.0

    def test_gradient_matches_manual_difference(self):
        from repro.core.convolution import solve_convolution

        dims = SwitchDimensions(4, 4)
        classes = [
            TrafficClass.poisson(0.2, name="a"),
            TrafficClass.poisson(0.1, name="b"),
        ]
        step = 1e-5
        manual = (
            solve_convolution(
                dims,
                [classes[0], TrafficClass.poisson(0.1 + step, name="b")],
            ).blocking(0)
            - solve_convolution(
                dims,
                [classes[0], TrafficClass.poisson(0.1 - step, name="b")],
            ).blocking(0)
        ) / (2 * step)
        assert blocking_gradient(
            dims, classes, 0, 1, step=step
        ) == pytest.approx(manual, rel=1e-9)

    def test_equal_bandwidth_classes_share_a_row(self):
        """B_r depends only on a_r, so equal-a rows are identical."""
        dims = SwitchDimensions(6, 6)
        classes = [
            TrafficClass.poisson(0.1, name="bg"),
            TrafficClass.poisson(0.05, name="narrow"),
            TrafficClass.poisson(0.002, a=2, name="wide"),
        ]
        matrix = blocking_elasticity_matrix(dims, classes)
        for a, b in zip(matrix[0], matrix[1]):
            assert a == pytest.approx(b, rel=1e-6)

    def test_wide_class_gradient_exceeds_narrow_at_light_load(self):
        """At light load an a=2 class's blocking reacts more strongly
        to background growth (double port exposure: dB ~ 2a u').  At
        heavy load the effect inverts as the wide class saturates
        toward B = 1 — so the claim is asserted in its valid regime."""
        dims = SwitchDimensions(6, 6)
        classes = [
            TrafficClass.poisson(0.01, name="bg"),
            TrafficClass.poisson(0.005, name="narrow"),
            TrafficClass.poisson(0.0005, a=2, name="wide"),
        ]
        wide = blocking_gradient(dims, classes, 2, 0, step=1e-6)
        narrow = blocking_gradient(dims, classes, 1, 0, step=1e-6)
        assert wide > narrow > 0.0

    def test_zero_blocking_row_is_zero(self):
        dims = SwitchDimensions(4, 4)
        classes = [
            TrafficClass.poisson(0.1),
            TrafficClass(alpha=0.0, beta=0.0, name="inert"),
        ]
        matrix = blocking_elasticity_matrix(dims, classes)
        # inert class offers nothing: its column is zero
        assert matrix[0][1] == 0.0

    def test_validation(self):
        dims = SwitchDimensions(3, 3)
        with pytest.raises(ConfigurationError):
            blocking_elasticity_matrix(dims, [])
        with pytest.raises(ConfigurationError):
            blocking_gradient(
                dims, [TrafficClass.poisson(0.1)], 0, 5
            )
