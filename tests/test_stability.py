"""Regression tests for smooth-traffic numerical stability.

The paper's eq. 9 auxiliary recursion ``V(n, r) = Q(n - aI) + b V(...)``
is an *alternating* series for smooth (Bernoulli, ``beta < 0``) classes.
Once ``|beta/mu| * (free pairs)`` exceeds one, its terms grow while the
true sum stays modest — catastrophic cancellation that no float
representation survives.  The same applies to Algorithm 2's D-chain and
to the diagonal concurrency recursion.  The paper's own examples sit in
the stable regime (``|b~| ~ 1e-6``); a 2-source smooth class on a 32x32
switch does not.

The library's remedies, all locked in here:

* Algorithm 1 folds smooth classes via the positive-term identity
  ``Q(N) = sum_k Phi_r(k) Q_rest(N - a k I)``;
* smooth-class concurrency uses the analogous positive sum
  (``e_smooth`` grids) instead of the unstable recursion;
* Algorithm 2 detects the regime and refuses with a clear error;
* the exact-rational oracle uses the same truncated (clamped-rate)
  model as the product form, so all solvers answer the same question.
"""

from __future__ import annotations

import pytest

from repro.core.convolution import solve_convolution
from repro.core.exact import solve_exact
from repro.core.mva import solve_mva
from repro.core.productform import solve_brute_force
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ComputationError

#: A strongly smooth class: 2 sources, Z = 0.75 -> |b| = 1/3.
STRONG_SMOOTH = TrafficClass.from_moments(
    mean=0.5, peakedness=0.75, mu=1.0, name="smooth"
)


class TestFoldCorrectness:
    @pytest.mark.parametrize("mode", ["log", "scaled", "float"])
    def test_strong_smooth_matches_brute_force(self, mode):
        dims = SwitchDimensions(12, 14)
        classes = [STRONG_SMOOTH, TrafficClass.poisson(0.01, name="p")]
        solution = solve_convolution(dims, classes, mode=mode)
        reference = solve_brute_force(dims, classes)
        assert solution.non_blocking(0) == pytest.approx(
            reference.non_blocking_probability(0), rel=1e-12
        )
        assert solution.concurrency(0) == pytest.approx(
            reference.concurrency(0), rel=1e-12
        )

    def test_large_switch_plausible_measures(self):
        """The original failure: this used to raise / return garbage."""
        dims = SwitchDimensions.square(64)
        classes = [STRONG_SMOOTH]
        solution = solve_convolution(dims, classes)
        # 2 sources, offered over ~64^2 port pairs: the class runs at
        # its source cap, so E is just under 2 and blocking is small.
        assert 1.9 < solution.concurrency(0) < 2.0
        assert 0.0 < solution.blocking(0) < 0.1

    def test_blocking_falls_with_switch_size_at_fixed_sources(self):
        blockings = [
            solve_convolution(
                SwitchDimensions.square(n), [STRONG_SMOOTH]
            ).blocking(0)
            for n in (8, 16, 32, 64)
        ]
        assert all(b > c for b, c in zip(blockings, blockings[1:]))

    def test_two_smooth_classes(self):
        dims = SwitchDimensions(9, 8)
        classes = [
            TrafficClass.bernoulli(2, 0.4, name="b1"),
            TrafficClass.bernoulli(3, 0.3, a=2, name="b2"),
            TrafficClass(alpha=0.05, beta=0.2, name="pk"),
        ]
        solution = solve_convolution(dims, classes)
        reference = solve_brute_force(dims, classes)
        for r in range(3):
            assert solution.concurrency(r) == pytest.approx(
                reference.concurrency(r), rel=1e-10
            )

    def test_e_smooth_grids_only_for_smooth_classes(self):
        dims = SwitchDimensions(6, 6)
        classes = [
            TrafficClass.poisson(0.1),
            TrafficClass.bernoulli(3, 0.2),
            TrafficClass(alpha=0.1, beta=0.3),
        ]
        solution = solve_convolution(dims, classes)
        assert set(solution.e_smooth) == {1}

    def test_sub_dimension_concurrency_matches_direct_solve(self):
        dims = SwitchDimensions(14, 12)
        classes = [STRONG_SMOOTH]
        big = solve_convolution(dims, classes)
        sub = SwitchDimensions(9, 7)
        direct = solve_convolution(sub, classes)
        assert big.concurrency(0, at=sub) == pytest.approx(
            direct.concurrency(0), rel=1e-12
        )


class TestExactTruncationSemantics:
    def test_exact_matches_brute_force_for_near_integer_sources(self):
        """from_moments produces a float source count a few ULPs off an
        integer; the oracle must truncate exactly like the product
        form (not follow the spurious negative-binomial tail)."""
        dims = SwitchDimensions(10, 10)
        classes = [STRONG_SMOOTH]
        exact = solve_exact(dims, classes)
        reference = solve_brute_force(dims, classes)
        assert exact.non_blocking(0) == pytest.approx(
            reference.non_blocking_probability(0), rel=1e-13
        )
        assert exact.concurrency(0) == pytest.approx(
            reference.concurrency(0), rel=1e-13
        )


class TestMvaGuard:
    def test_raises_in_unstable_regime(self):
        dims = SwitchDimensions.square(32)
        with pytest.raises(ComputationError, match="unstable"):
            solve_mva(dims, [STRONG_SMOOTH])

    def test_allows_stable_smooth_configurations(self):
        dims = SwitchDimensions(6, 6)
        classes = [TrafficClass.bernoulli(4, 0.05)]
        solution = solve_mva(dims, classes)
        reference = solve_convolution(dims, classes)
        assert solution.non_blocking(0) == pytest.approx(
            reference.non_blocking(0), rel=1e-9
        )

    def test_paper_regime_is_stable(self):
        """Figure 1's smooth parameters (|b~| ~ 1e-6) pass the guard."""
        n = 128
        dims = SwitchDimensions.square(n)
        classes = [
            TrafficClass.from_aggregate(0.0024, -4e-6, n2=n, mu=1.0)
        ]
        solution = solve_mva(dims, classes)
        reference = solve_convolution(dims, classes)
        assert solution.blocking(0) == pytest.approx(
            reference.blocking(0), rel=1e-8
        )
