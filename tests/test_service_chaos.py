"""Wire-level chaos: the daemon under a deterministic fault plan.

The suite drives :class:`ServiceFaultInjector` plans — stalled
sockets, mid-request disconnects, delayed and killed engine flushes,
a forced-open disk breaker — against a live daemon and asserts the
three invariants the resilience work promises:

* **no hung connections** — every well-formed request gets an answer,
  every malformed peer is cut loose by a timeout;
* **no leaked admission tokens** — ``admitted == released`` and
  ``in_use == 0`` once the dust settles, whatever the fault;
* **byte identity** — non-degraded responses match the local solver
  exactly, faults or not.
"""

from __future__ import annotations

import json
import time

import pytest

pytestmark = [pytest.mark.service, pytest.mark.chaos]

from repro.api import SolveRequest, solve
from repro.core.traffic import TrafficClass
from repro.engine import (
    BatchSolver,
    EngineConfig,
    ServiceFault,
    ServiceFaultInjector,
    ServiceFaultPlan,
)
from repro.engine.chaos import (
    KIND_CLIENT_DISCONNECT,
    KIND_CLIENT_STALL,
    KIND_ENGINE_DELAY,
    KIND_ENGINE_ERROR,
)
from repro.exceptions import ConfigurationError
from repro.service import (
    BrownoutConfig,
    ServiceClient,
    ServiceConfig,
    start_in_thread,
)


def point_request(n: int, rate: float = 0.01) -> SolveRequest:
    return SolveRequest.square(n, [TrafficClass.poisson(rate)])


def assert_byte_identical(remote, local) -> None:
    assert remote == local
    for field in ("blocking", "throughput", "mean_occupancy",
                  "utilization"):
        r, l = getattr(remote, field), getattr(local, field)
        if isinstance(r, float):
            assert r.hex() == l.hex(), field


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


def test_fault_plan_is_seed_deterministic():
    kwargs = dict(stalls=2, disconnects=2, engine_delays=2,
                  engine_errors=1, flushes=12, breaker_open=True)
    assert ServiceFaultPlan.from_seed(7, **kwargs) == \
        ServiceFaultPlan.from_seed(7, **kwargs)
    plans = {
        ServiceFaultPlan.from_seed(seed, **kwargs).faults
        for seed in range(6)
    }
    assert len(plans) > 1  # seeds actually steer the victim flushes


def test_fault_plan_rejects_overcommitted_flushes():
    with pytest.raises(ConfigurationError):
        ServiceFaultPlan.from_seed(1, engine_errors=5, flushes=3)


def test_fault_kind_is_validated():
    with pytest.raises(ConfigurationError):
        ServiceFault(kind="cosmic-ray")


def test_engine_fault_lookup_by_flush_index():
    plan = ServiceFaultPlan(faults=(
        ServiceFault(kind=KIND_ENGINE_DELAY, flush=3, duration=0.1),
        ServiceFault(kind=KIND_ENGINE_ERROR, flush=5),
        ServiceFault(kind=KIND_CLIENT_STALL),
    ))
    assert plan.engine_fault(3).kind == KIND_ENGINE_DELAY
    assert plan.engine_fault(5).kind == KIND_ENGINE_ERROR
    assert plan.engine_fault(0) is None
    assert len(plan.client_faults) == 1
    assert not plan.wants_breaker_open


# ----------------------------------------------------------------------
# The full suite: every fault surface against one live daemon
# ----------------------------------------------------------------------


SOLVE_COUNT = 10


@pytest.mark.parametrize("seed", [3, 17, 92])
def test_daemon_survives_full_fault_plan(seed):
    plan = ServiceFaultPlan.from_seed(
        seed,
        stalls=2,
        disconnects=2,
        engine_delays=1,
        engine_errors=1,
        flushes=SOLVE_COUNT,
        delay_duration=0.15,
    )
    injector = ServiceFaultInjector(plan)
    engine = BatchSolver(EngineConfig())
    config = ServiceConfig(
        port=0, batch_window=0.005, gate_capacity=16,
        read_timeout=0.5,
        brownout=BrownoutConfig(enabled=False),
    )
    with start_in_thread(config, engine=engine) as handle:
        service = handle.service
        service.batcher._runner = injector.wrap_runner(service._run_batch)
        host, port = handle.address

        # Surface 1: slow-loris connections held open for the duration.
        stalled = [
            injector.stalled_socket(host, port)
            for f in plan.client_faults if f.kind == KIND_CLIENT_STALL
        ]

        # Surface 2: complete requests whose client vanishes pre-reply.
        body = json.dumps(
            {"request": point_request(12, rate=0.02).to_dict()}
        ).encode("utf-8")
        for fault in plan.client_faults:
            if fault.kind == KIND_CLIENT_DISCONNECT:
                injector.disconnect_mid_request(host, port, body)

        # Surface 3: the engine faults fire on their planned flush
        # indices while normal traffic flows.
        client = ServiceClient(host, port, timeout=30.0)
        for i in range(SOLVE_COUNT):
            request = point_request(4 + i)
            began = time.monotonic()
            remote = client.solve(request)
            assert time.monotonic() - began < 20.0  # no hung connection
            assert_byte_identical(remote, solve(request))
            raw = client.solve_raw(request)
            assert "degraded" not in raw  # non-degraded stays unmarked

        # Every planned engine fault actually fired (flush indices are
        # all < SOLVE_COUNT and we ran at least that many flushes).
        fired_kinds = [kind for kind, _ in injector.fired]
        assert fired_kinds.count(KIND_ENGINE_DELAY) >= 1
        assert fired_kinds.count(KIND_ENGINE_ERROR) >= 1
        assert fired_kinds.count(KIND_CLIENT_STALL) == 2
        assert fired_kinds.count(KIND_CLIENT_DISCONNECT) == 2

        # The killed flush was supervised: respawn + requeue, invisible
        # to callers.
        assert service.batcher.worker_respawns >= 1

        # Zero leaked admission tokens, whatever the disconnects did.
        deadline = time.monotonic() + 10.0
        while service.gate.in_use and time.monotonic() < deadline:
            time.sleep(0.02)
        assert service.gate.in_use == 0
        assert service.gate.admitted == service.gate.released
        assert service.instruments._inflight_count == 0
        assert len(service.flights) == 0

        # The stalled sockets were cut loose by the read timeout, not
        # left pinning the daemon.
        for sock in stalled:
            sock.settimeout(5.0)
            tail = b""
            try:
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    tail += chunk
            finally:
                sock.close()
            assert tail == b"" or b"408" in tail


def test_stalled_peer_does_not_block_live_traffic():
    engine = BatchSolver(EngineConfig())
    config = ServiceConfig(
        port=0, batch_window=0.005, read_timeout=2.0,
        brownout=BrownoutConfig(enabled=False),
    )
    with start_in_thread(config, engine=engine) as handle:
        injector = ServiceFaultInjector(
            ServiceFaultPlan.from_seed(5, stalls=1)
        )
        sock = injector.stalled_socket(*handle.address)
        try:
            client = ServiceClient(*handle.address)
            request = point_request(6)
            began = time.monotonic()
            remote = client.solve(request)
            # The solve completed long before the loris timed out.
            assert time.monotonic() - began < 2.0
            assert_byte_identical(remote, solve(request))
        finally:
            sock.close()


def test_forced_breaker_open_registers_as_pressure(tmp_path):
    engine = BatchSolver(EngineConfig(disk_cache=tmp_path / "cache"))
    config = ServiceConfig(
        port=0, batch_window=0.005,
        brownout=BrownoutConfig(enabled=True, interval=60.0),
    )
    with start_in_thread(config, engine=engine) as handle:
        injector = ServiceFaultInjector(
            ServiceFaultPlan.from_seed(9, breaker_open=True)
        )
        assert injector.plan.wants_breaker_open
        injector.force_breaker_open(engine.disk.breaker)
        assert engine.disk.breaker.state == "open"

        client = ServiceClient(*handle.address)
        # The controller sees the open breaker as pressure ...
        health = client.health()
        assert health["brownout"]["pressure"]["breaker"] == \
            pytest.approx(0.6)
        # ... and the daemon keeps solving (the breaker may half-open
        # and recover on the probe; service is never interrupted).
        request = point_request(5)
        assert_byte_identical(client.solve(request), solve(request))
