"""Fault-model primitives: masks, processes, schedules, bundles."""

from __future__ import annotations

import pytest

from repro.core.state import SwitchDimensions
from repro.exceptions import ConfigurationError, InvalidParameterError
from repro.robust.faults import (
    FAIL,
    INPUT,
    OUTPUT,
    REPAIR,
    FailureMask,
    FaultModel,
    PortFailureProcess,
    ScheduledFault,
)


class TestFailureMask:
    def test_none_is_healthy(self):
        mask = FailureMask.none()
        assert mask.is_healthy
        assert mask.n_failed == 0

    def test_from_ports_deduplicates(self):
        mask = FailureMask.from_ports(inputs=[1, 1, 2], outputs=[0])
        assert mask.inputs == frozenset({1, 2})
        assert mask.n_failed == 3
        assert not mask.is_healthy

    def test_rejects_negative_and_non_integer_ports(self):
        with pytest.raises(ConfigurationError):
            FailureMask.from_ports(inputs=[-1])
        with pytest.raises(ConfigurationError):
            FailureMask.from_ports(outputs=[1.5])
        with pytest.raises(ConfigurationError):
            FailureMask.from_ports(inputs=[True])

    def test_validate_for_range(self):
        dims = SwitchDimensions(4, 3)
        FailureMask.from_ports(inputs=[3], outputs=[2]).validate_for(dims)
        with pytest.raises(ConfigurationError):
            FailureMask.from_ports(inputs=[4]).validate_for(dims)
        with pytest.raises(ConfigurationError):
            FailureMask.from_ports(outputs=[3]).validate_for(dims)

    def test_degraded_dims(self):
        dims = SwitchDimensions(6, 5)
        mask = FailureMask.from_ports(inputs=[0, 2], outputs=[4])
        assert mask.degraded_dims(dims) == SwitchDimensions(4, 4)

    def test_degraded_dims_can_reach_zero(self):
        dims = SwitchDimensions(2, 2)
        mask = FailureMask.from_ports(inputs=[0, 1], outputs=[0, 1])
        assert mask.degraded_dims(dims) == SwitchDimensions(0, 0)

    def test_union(self):
        a = FailureMask.from_ports(inputs=[0])
        b = FailureMask.from_ports(inputs=[1], outputs=[2])
        merged = a.union(b)
        assert merged.inputs == frozenset({0, 1})
        assert merged.outputs == frozenset({2})


class TestPortFailureProcess:
    def test_availability(self):
        process = PortFailureProcess(mtbf=99.0, mttr=1.0)
        assert process.availability == pytest.approx(0.99)
        assert process.unavailability == pytest.approx(0.01)

    @pytest.mark.parametrize("mtbf,mttr", [(0.0, 1.0), (1.0, 0.0),
                                           (-1.0, 1.0), (float("inf"), 1.0)])
    def test_rejects_bad_parameters(self, mtbf, mttr):
        with pytest.raises(InvalidParameterError):
            PortFailureProcess(mtbf=mtbf, mttr=mttr)


class TestScheduledFault:
    def test_valid(self):
        fault = ScheduledFault(time=1.0, side=INPUT, port=0)
        assert fault.kind == FAIL
        ScheduledFault(time=0.0, side=OUTPUT, port=3, kind=REPAIR)

    def test_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError):
            ScheduledFault(time=-1.0, side=INPUT, port=0)
        with pytest.raises(ConfigurationError):
            ScheduledFault(time=1.0, side="sideways", port=0)
        with pytest.raises(ConfigurationError):
            ScheduledFault(time=1.0, side=INPUT, port=0, kind="explode")
        with pytest.raises(ConfigurationError):
            ScheduledFault(time=1.0, side=INPUT, port=-2)


class TestFaultModel:
    def test_static(self):
        mask = FailureMask.from_ports(inputs=[1])
        model = FaultModel.static(mask)
        assert model.is_static
        assert model.initial_mask == mask

    def test_exponential_sides(self):
        model = FaultModel.exponential(mtbf=10.0, mttr=1.0, outputs=False)
        assert model.input_process is not None
        assert model.output_process is None
        assert not model.is_static

    def test_schedule_breaks_static(self):
        model = FaultModel(
            schedule=[ScheduledFault(time=1.0, side=INPUT, port=0)]
        )
        assert not model.is_static

    def test_validate_for_checks_mask_and_schedule(self):
        dims = SwitchDimensions(2, 2)
        FaultModel.static(FailureMask.from_ports(inputs=[1])).validate_for(dims)
        with pytest.raises(ConfigurationError):
            FaultModel.static(
                FailureMask.from_ports(outputs=[2])
            ).validate_for(dims)
        with pytest.raises(ConfigurationError):
            FaultModel(
                schedule=[ScheduledFault(time=1.0, side=OUTPUT, port=5)]
            ).validate_for(dims)
