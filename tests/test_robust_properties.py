"""Property-based tests for the resilience layer."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.convolution import solve_convolution
from repro.robust import FailureMask, solve_degraded
from repro.robust.facade import NoHealthySolutionError, solve_robust

from tests.strategies import (
    classes_strategy,
    dims_and_mask,
    dims_strategy,
    failure_mask_for,
    non_peaky_classes_strategy,
)
from hypothesis import strategies as st


@st.composite
def degraded_scenario(draw):
    dims = draw(dims_strategy)
    mask = draw(failure_mask_for(dims))
    classes = draw(non_peaky_classes_strategy)
    return dims, mask, classes


@given(scenario=degraded_scenario())
def test_failures_never_improve_nonpeaky_blocking(scenario):
    """Port failures cannot lower blocking for smooth unit-rate traffic.

    This is the monotonicity law of rerouted (demand-conserving)
    degradation, and it holds exactly in the regime generated here:
    Bernoulli/Poisson classes with ``a = 1``.  Outside it — Pascal
    peakedness or multi-rate geometry — genuine counterexamples exist;
    see ``docs/robustness.md``.
    """
    dims, mask, classes = scenario
    healthy = solve_convolution(dims, classes)
    degraded = solve_degraded(dims, classes, mask, routing="reroute")
    for r in range(len(classes)):
        assert degraded.blocking(r) >= healthy.blocking(r) - 1e-9


@given(scenario=degraded_scenario())
def test_degraded_measures_within_bounds(scenario):
    dims, mask, classes = scenario
    degraded = solve_degraded(dims, classes, mask)
    for r in range(len(classes)):
        assert -1e-12 <= degraded.blocking(r) <= 1.0 + 1e-12
        assert degraded.concurrency(r) >= -1e-12
        assert -1e-12 <= degraded.call_acceptance(r) <= 1.0 + 1e-12


@given(dims=dims_strategy, classes=classes_strategy)
def test_solve_robust_always_names_an_attempted_solver(dims, classes):
    """Diagnostics are never empty, whether the chain succeeds or not."""
    try:
        result = solve_robust(dims, classes)
    except NoHealthySolutionError as exc:
        diagnostics = exc.diagnostics
        assert diagnostics.chosen is None
    else:
        diagnostics = result.diagnostics
        assert diagnostics.chosen == result.method
        assert (
            diagnostics.attempt(result.method).status == "ok"
        )
    assert len(diagnostics.attempted) >= 1


@given(dims=dims_strategy, classes=classes_strategy)
def test_solve_robust_matches_convolution_when_healthy(dims, classes):
    try:
        result = solve_robust(dims, classes)
    except NoHealthySolutionError:
        return
    reference = solve_convolution(dims, classes)
    for r in range(len(classes)):
        assert result.solution.blocking(r) == pytest.approx(
            reference.blocking(r), rel=1e-6, abs=1e-9
        )
