"""Tests for the signed log-domain arithmetic helper."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.logspace import NEG_INF, signed_log_add, signed_log_scale


def _pack(x: float) -> tuple[float, int]:
    if x == 0:
        return NEG_INF, 0
    return math.log(abs(x)), 1 if x > 0 else -1


def _unpack(logmag: float, sign: int) -> float:
    if sign == 0:
        return 0.0
    return sign * math.exp(logmag)


class TestSignedLogAdd:
    @pytest.mark.parametrize(
        "a,b",
        [
            (2.0, 3.0),
            (2.0, -3.0),
            (-2.0, 3.0),
            (-2.0, -3.0),
            (1e-150, 1e-150),
            (5.0, 0.0),
            (0.0, -7.0),
            (0.0, 0.0),
            (1e100, -1.0),
        ],
    )
    def test_matches_plain_addition(self, a, b):
        la, sa = _pack(a)
        lb, sb = _pack(b)
        out_l, out_s = signed_log_add(
            np.array([la]), np.array([sa]), np.array([lb]), np.array([sb])
        )
        assert _unpack(float(out_l[0]), int(out_s[0])) == pytest.approx(
            a + b, rel=1e-12, abs=1e-300
        )

    def test_exact_cancellation_gives_zero(self):
        la, sa = _pack(4.0)
        lb, sb = _pack(-4.0)
        out_l, out_s = signed_log_add(
            np.array([la]), np.array([sa]), np.array([lb]), np.array([sb])
        )
        assert out_s[0] == 0
        assert out_l[0] == NEG_INF

    def test_vectorized_mixed_cases(self):
        values_a = np.array([1.0, -2.0, 0.0, 3.0])
        values_b = np.array([2.0, 2.0, -5.0, 0.0])
        la, sa = zip(*[_pack(v) for v in values_a])
        lb, sb = zip(*[_pack(v) for v in values_b])
        out_l, out_s = signed_log_add(
            np.array(la), np.array(sa), np.array(lb), np.array(sb)
        )
        for i, expected in enumerate(values_a + values_b):
            assert _unpack(float(out_l[i]), int(out_s[i])) == pytest.approx(
                expected, rel=1e-12, abs=1e-300
            )

    def test_huge_magnitude_no_overflow(self):
        out_l, out_s = signed_log_add(
            np.array([1e4]), np.array([1]), np.array([1e4 - 1.0]), np.array([1])
        )
        # log(e^10000 + e^9999) = 10000 + log(1 + 1/e)
        assert out_l[0] == pytest.approx(1e4 + math.log1p(math.exp(-1.0)))
        assert out_s[0] == 1


class TestSignedLogScale:
    def test_positive_factor(self):
        l, s = signed_log_scale(np.array([0.0]), np.array([1]), 2.5)
        assert _unpack(float(l[0]), int(s[0])) == pytest.approx(2.5)

    def test_negative_factor_flips_sign(self):
        l, s = signed_log_scale(np.array([0.0]), np.array([1]), -0.5)
        assert _unpack(float(l[0]), int(s[0])) == pytest.approx(-0.5)

    def test_zero_factor_gives_signed_zero(self):
        l, s = signed_log_scale(np.array([3.0]), np.array([-1]), 0.0)
        assert s[0] == 0
        assert l[0] == NEG_INF

    def test_scaling_signed_zero_stays_zero(self):
        l, s = signed_log_scale(np.array([NEG_INF]), np.array([0]), 4.0)
        assert s[0] == 0
