"""Chaos harness drills: seed-driven fault injection against full
50-point sweeps, asserting recovery is byte-identical to a clean run.

Every solve is a pure function of its request, and ``SolveResult``
equality deliberately excludes timing/provenance fields — so a batch
that survived a worker kill, a blown deadline, or a corrupted cache
entry must compare *equal* to the fault-free batch.  That equality is
the resilience layer's correctness contract.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.chaos  # fault-injection chaos harness

from repro.api import SolveRequest
from repro.core.traffic import TrafficClass
from repro.engine import (
    BatchSolver,
    EngineConfig,
    FailedResult,
    corrupt_entry,
)
from repro.engine.chaos import (
    ALL_ATTEMPTS,
    KIND_ERROR,
    KIND_KILL,
    CacheFaultInjector,
    ChaosFault,
    FaultPlan,
    WorkerKilledError,
)
from repro.exceptions import ConfigurationError
from repro.methods import SolveMethod

SEED = 1992  # the paper's year; any seed works, this one is pinned
N_POINTS = 50


@pytest.fixture(scope="module")
def classes():
    return (
        TrafficClass.poisson(0.03, name="data"),
        TrafficClass(alpha=0.01, beta=0.005, name="video"),
    )


@pytest.fixture(scope="module")
def requests(classes):
    """50 distinct MVA points (MVA is never grid-grouped: one task
    per point, which is what the fault plans target)."""
    return [
        SolveRequest.square(n, classes, method=SolveMethod.MVA)
        for n in range(3, 3 + N_POINTS)
    ]


@pytest.fixture(scope="module")
def clean(requests):
    """Fault-free reference results, solved serially (once)."""
    return BatchSolver(
        EngineConfig(max_retries=0)
    ).evaluate_many(requests, parallel=False)


class TestFaultPlans:
    def test_from_seed_is_deterministic(self):
        a = FaultPlan.from_seed(SEED, tasks=N_POINTS, kills=1, delays=2)
        b = FaultPlan.from_seed(SEED, tasks=N_POINTS, kills=1, delays=2)
        assert a == b
        c = FaultPlan.from_seed(SEED + 1, tasks=N_POINTS, kills=1, delays=2)
        assert a != c

    def test_from_seed_victims_are_distinct(self):
        plan = FaultPlan.from_seed(
            SEED, tasks=10, kills=3, delays=3, errors=3
        )
        victims = [f.task for f in plan.task_faults]
        assert len(victims) == len(set(victims)) == 9

    def test_from_seed_rejects_overcommitment(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_seed(SEED, tasks=2, kills=3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosFault("melt-the-switch")

    def test_kill_applied_in_process_raises(self):
        plan = FaultPlan(faults=(ChaosFault(KIND_KILL, task=0),))
        with pytest.raises(WorkerKilledError):
            plan.apply_task(0, 0, in_worker=False)
        # Non-matching task/attempt: no-op.
        plan.apply_task(1, 0, in_worker=False)
        plan.apply_task(0, 1, in_worker=False)

    def test_cache_injector_respects_count_budget(self, tmp_path):
        plan = FaultPlan(
            faults=(ChaosFault("cache-deny", op="load", count=2),)
        )
        injector = CacheFaultInjector(plan)
        for _ in range(2):
            with pytest.raises(OSError):
                injector("load", "k", tmp_path / "k.json")
        injector("load", "k", tmp_path / "k.json")  # budget spent
        injector("store", "k", tmp_path / "k.json")  # op mismatch
        assert len(injector.fired) == 2


class TestWorkerKillRecovery:
    def test_sweep_survives_a_worker_kill(self, requests, clean):
        plan = FaultPlan.from_seed(SEED, tasks=N_POINTS, kills=1)
        engine = BatchSolver(EngineConfig(chaos=plan, processes=2))
        results = engine.evaluate_many(requests, parallel=True)
        assert results == clean
        metrics = engine.last_metrics
        assert metrics.failed == 0
        assert metrics.pool_respawns >= 1
        assert metrics.tasks_lost >= 1

    def test_kill_simulated_in_serial_batch_is_retried(
        self, requests, clean
    ):
        plan = FaultPlan.from_seed(SEED, tasks=N_POINTS, kills=1)
        engine = BatchSolver(EngineConfig(chaos=plan))
        results = engine.evaluate_many(requests, parallel=False)
        assert results == clean
        assert engine.last_metrics.retries >= 1
        assert engine.last_metrics.failed == 0


class TestDeadlineRecovery:
    def test_sweep_survives_a_delayed_task(self, requests, clean):
        plan = FaultPlan.from_seed(
            SEED, tasks=N_POINTS, kills=0, delays=1, delay_duration=2.0
        )
        engine = BatchSolver(
            EngineConfig(chaos=plan, task_deadline=0.4, processes=2)
        )
        results = engine.evaluate_many(requests, parallel=True)
        assert results == clean
        metrics = engine.last_metrics
        assert metrics.timeouts >= 1
        assert metrics.retries >= 1
        assert metrics.failed == 0


class TestCacheCorruptionRecovery:
    def test_sweep_survives_a_corrupted_entry(
        self, tmp_path, requests, clean
    ):
        # Pass 1: populate the disk cache.
        warm = BatchSolver(EngineConfig(disk_cache=tmp_path))
        first = warm.evaluate_many(requests, parallel=False)
        assert first == clean

        # Chaos corrupts the seed-chosen victim's entry right before
        # the engine reads it.
        victim = FaultPlan.from_seed(
            SEED, tasks=N_POINTS, kills=1
        ).task_faults[0].task
        victim_key = requests[victim].cache_key
        plan = FaultPlan(
            faults=(
                ChaosFault(
                    "cache-corrupt", op="load", key=victim_key
                ),
            ),
            seed=SEED,
        )
        engine = BatchSolver(
            EngineConfig(disk_cache=tmp_path, chaos=plan)
        )
        results = engine.evaluate_many(requests, parallel=False)
        assert results == clean
        assert engine.disk.fault_hook.fired == [
            ("cache-corrupt", "load", victim_key)
        ]
        # The quarantined entry was re-solved and re-stored intact.
        assert engine.disk.load(victim_key) is not None

    def test_corrupt_entry_helper(self, tmp_path, classes):
        disk_engine = BatchSolver(EngineConfig(disk_cache=tmp_path))
        request = SolveRequest.square(
            4, classes, method=SolveMethod.MVA
        )
        before = disk_engine.solve(request)
        path = corrupt_entry(disk_engine.disk, request.cache_key)
        assert path.exists()
        disk_engine.clear()
        after = disk_engine.solve(request)  # quarantine + re-solve
        assert after == before
        with pytest.raises(ConfigurationError):
            corrupt_entry(disk_engine.disk, "never-stored-key")


class TestPermanentFailure:
    def test_parallel_batch_isolates_a_permanent_failure(
        self, requests, clean
    ):
        victim = 7
        plan = FaultPlan(
            faults=(
                ChaosFault(
                    KIND_ERROR, task=victim, attempt=ALL_ATTEMPTS
                ),
            )
        )
        engine = BatchSolver(
            EngineConfig(chaos=plan, processes=2, max_retries=1)
        )
        results = engine.evaluate_many(requests, parallel=True)
        failure = results[victim]
        assert isinstance(failure, FailedResult)
        assert failure.error_type == "OSError"
        assert len(failure.attempts) == 2  # original + 1 retry
        others = [r for i, r in enumerate(results) if i != victim]
        expected = [r for i, r in enumerate(clean) if i != victim]
        assert others == expected
        assert engine.last_metrics.failed == 1

    def test_parallel_strict_reraises(self, requests):
        plan = FaultPlan(
            faults=(
                ChaosFault(KIND_ERROR, task=7, attempt=ALL_ATTEMPTS),
            )
        )
        engine = BatchSolver(
            EngineConfig(chaos=plan, processes=2, max_retries=0)
        )
        with pytest.raises(OSError):
            engine.evaluate_many(requests, parallel=True, strict=True)


class TestBreakerUnderChaos:
    def test_cache_denies_trip_the_breaker_mid_sweep(
        self, tmp_path, requests, clean
    ):
        plan = FaultPlan(
            faults=(ChaosFault("cache-deny", count=3),), seed=SEED
        )
        engine = BatchSolver(
            EngineConfig(
                disk_cache=tmp_path,
                chaos=plan,
                breaker_threshold=3,
                breaker_cooldown=3600.0,
            )
        )
        results = engine.evaluate_many(requests[:10], parallel=False)
        assert results == clean[:10]
        metrics = engine.last_metrics
        assert metrics.breaker_trips == 1
        assert metrics.breaker_state == "open"
        assert engine.disk.breaker.rejections > 0
        assert engine.last_metrics.failed == 0
