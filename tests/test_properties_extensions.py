"""Property-based tests for the extension subsystems."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.erlang import engset_blocking, erlang_b
from repro.core.convolution import solve_convolution
from repro.core.series_solver import solve_series
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.extensions import (
    OccupancyThresholdPolicy,
    solve_hot_spot,
    solve_with_admission,
)

# Shared strategies (same family the core property tests use).
from tests.strategies import classes_strategy, dims_strategy


@given(dims=dims_strategy, classes=classes_strategy)
def test_series_solver_matches_convolution(dims, classes):
    series = solve_series(dims, classes)
    conv = solve_convolution(dims, classes)
    for r in range(len(classes)):
        assert series.non_blocking(r) == pytest.approx(
            conv.non_blocking(r), rel=1e-8, abs=1e-12
        )
        assert series.concurrency(r) == pytest.approx(
            conv.concurrency(r), rel=1e-8, abs=1e-12
        )


@given(dims=dims_strategy, classes=classes_strategy)
def test_unrestricted_admission_is_product_form(dims, classes):
    policy = OccupancyThresholdPolicy.unrestricted(dims, len(classes))
    controlled = solve_with_admission(dims, classes, policy)
    plain = solve_convolution(dims, classes)
    for r in range(len(classes)):
        assert controlled.concurrency(r) == pytest.approx(
            plain.concurrency(r), rel=1e-7, abs=1e-10
        )


@given(
    n=st.integers(min_value=2, max_value=5),
    rho=st.floats(min_value=0.05, max_value=0.8),
    threshold=st.integers(min_value=0, max_value=5),
)
def test_admission_threshold_monotonicity(n, rho, threshold):
    """Loosening the cheap class's cap never helps the protected class."""
    threshold = min(threshold, n)
    if threshold >= n:
        return
    dims = SwitchDimensions.square(n)
    classes = (
        TrafficClass.poisson(rho, weight=2.0, name="gold"),
        TrafficClass.poisson(rho, weight=0.1, name="bronze"),
    )
    tight = solve_with_admission(
        dims, classes, OccupancyThresholdPolicy((n, threshold))
    )
    loose = solve_with_admission(
        dims, classes, OccupancyThresholdPolicy((n, threshold + 1))
    )
    assert tight.concurrency(0) >= loose.concurrency(0) - 1e-10
    assert tight.concurrency(1) <= loose.concurrency(1) + 1e-10


@given(
    n=st.integers(min_value=2, max_value=8),
    rho=st.floats(min_value=0.01, max_value=1.0),
)
def test_hot_spot_uniform_limit(n, rho):
    dims = SwitchDimensions.square(n)
    cls = TrafficClass.poisson(rho)
    chain = solve_hot_spot(dims, cls, factor=1.0)
    uniform = solve_convolution(dims, [cls])
    assert chain.blocking() == pytest.approx(
        uniform.blocking(0), rel=1e-8, abs=1e-12
    )


@given(
    n=st.integers(min_value=2, max_value=6),
    rho=st.floats(min_value=0.01, max_value=0.5),
    factor=st.floats(min_value=1.0, max_value=32.0),
)
def test_hot_spot_skew_never_helps(n, rho, factor):
    dims = SwitchDimensions.square(n)
    cls = TrafficClass.poisson(rho)
    skewed = solve_hot_spot(dims, cls, factor=factor)
    uniform = solve_hot_spot(dims, cls, factor=1.0)
    assert skewed.blocking() >= uniform.blocking() - 1e-10
    assert 0.0 <= skewed.blocking() <= 1.0


@given(dims=dims_strategy, classes=classes_strategy)
def test_io_roundtrip_preserves_solution(dims, classes):
    """Model -> JSON dict -> model gives bit-identical measures."""
    from repro.core.model import CrossbarModel
    from repro.io import model_from_dict, model_to_dict

    model = CrossbarModel(dims, tuple(classes))
    clone = model_from_dict(model_to_dict(model))
    original = model.solve()
    recovered = clone.solve()
    for r in range(len(classes)):
        assert recovered.blocking(r) == original.blocking(r)
        assert recovered.concurrency(r) == original.concurrency(r)


@given(
    servers=st.integers(min_value=1, max_value=60),
    load=st.floats(min_value=0.0, max_value=100.0),
)
def test_erlang_b_bounds_and_monotonicity(servers, load):
    b = erlang_b(servers, load)
    assert 0.0 <= b <= 1.0
    assert erlang_b(servers + 1, load) <= b + 1e-12


@given(
    sources=st.integers(min_value=2, max_value=30),
    per_source=st.floats(min_value=0.01, max_value=3.0),
    servers=st.integers(min_value=1, max_value=10),
)
def test_engset_bounds(sources, per_source, servers):
    b = engset_blocking(sources, per_source, min(servers, sources))
    assert 0.0 <= b <= 1.0
