"""Brownout ladder: staged degradation under pressure, observable end
to end.

Controller units cover the hysteresis (raise-after / lower-after
consecutive evaluations), the gate-limit side effects, and the forced
overrides.  The end-to-end walk drives a live daemon through
admission-shrink -> cheap-method -> stale-cache -> fast-503 and back,
asserting the wire contract of every stage and that each transition
lands on ``/metrics``.
"""

from __future__ import annotations

import dataclasses
import threading

import pytest

pytestmark = pytest.mark.service  # spins up the solve-serving daemon

from repro.api import SolveMethod, SolveRequest, solve
from repro.core.traffic import TrafficClass
from repro.engine import BatchSolver, EngineConfig
from repro.exceptions import ConfigurationError
from repro.service import (
    AdmissionGate,
    AdmissionRejectedError,
    BrownoutConfig,
    STAGE_NAMES,
    ServiceClient,
    ServiceConfig,
    ServicePressureController,
    start_in_thread,
)
from repro.service.brownout import (
    STAGE_ADMISSION_SHRINK,
    STAGE_CHEAP_METHOD,
    STAGE_FAST_503,
    STAGE_NORMAL,
    STAGE_STALE_CACHE,
)


def point_request(n: int = 4, rate: float = 0.01) -> SolveRequest:
    return SolveRequest.square(n, [TrafficClass.poisson(rate)])


class _StubBatcher:
    max_batch = 8
    queue_depth = 0
    worker_lag = 0.0


class _StubEngine:
    disk = None


def make_controller(
    capacity: int = 10, **config_overrides
) -> ServicePressureController:
    gate = AdmissionGate(capacity)
    return ServicePressureController(
        BrownoutConfig(**config_overrides),
        gate=gate,
        batcher=_StubBatcher(),
        engine=_StubEngine(),
    )


def pin_pressure(
    controller: ServicePressureController, overall: float
) -> None:
    controller.pressure = lambda: {
        "gate": overall, "queue": 0.0, "lag": 0.0, "breaker": 0.0,
        "overall": overall,
    }


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------


@pytest.mark.parametrize("bad", [
    dict(shrink_factor=0.0),
    dict(shrink_factor=1.5),
    dict(lower_threshold=0.9, raise_threshold=0.8),
    dict(interval=0.0),
    dict(lag_budget=0.0),
    dict(raise_after=0),
    dict(lower_after=0),
])
def test_brownout_config_rejects_bad_knobs(bad):
    with pytest.raises(ConfigurationError):
        BrownoutConfig(**bad)


# ----------------------------------------------------------------------
# Hysteresis
# ----------------------------------------------------------------------


def test_escalation_needs_consecutive_high_scores():
    controller = make_controller(raise_after=3)
    pin_pressure(controller, 0.95)
    assert controller.evaluate() == STAGE_NORMAL
    assert controller.evaluate() == STAGE_NORMAL
    assert controller.evaluate() == STAGE_ADMISSION_SHRINK


def test_midband_score_resets_the_streak():
    controller = make_controller(raise_after=2)
    pin_pressure(controller, 0.95)
    controller.evaluate()
    pin_pressure(controller, 0.7)  # between the thresholds
    controller.evaluate()
    pin_pressure(controller, 0.95)
    controller.evaluate()  # streak restarted: still only 1 high score
    assert controller.stage == STAGE_NORMAL
    controller.evaluate()
    assert controller.stage == STAGE_ADMISSION_SHRINK


def test_recovery_is_slower_than_escalation():
    controller = make_controller(raise_after=2, lower_after=4)
    pin_pressure(controller, 0.95)
    controller.evaluate()
    controller.evaluate()
    assert controller.stage == STAGE_ADMISSION_SHRINK
    pin_pressure(controller, 0.1)
    for _ in range(3):
        controller.evaluate()
        assert controller.stage == STAGE_ADMISSION_SHRINK
    controller.evaluate()
    assert controller.stage == STAGE_NORMAL


def test_ladder_tops_out_at_fast_503():
    controller = make_controller(raise_after=1)
    pin_pressure(controller, 1.0)
    for _ in range(10):
        controller.evaluate()
    assert controller.stage == STAGE_FAST_503
    assert controller.shedding


# ----------------------------------------------------------------------
# Side effects on the admission gate
# ----------------------------------------------------------------------


def test_stage1_shrinks_gate_limit_and_recovery_restores_it():
    controller = make_controller(capacity=10, raise_after=1,
                                 lower_after=1, shrink_factor=0.5)
    gate = controller.gate
    assert gate.limit == 10
    pin_pressure(controller, 0.95)
    controller.evaluate()
    assert controller.stage == STAGE_ADMISSION_SHRINK
    assert gate.limit == 5
    # The shrunken limit holds for the whole degraded ladder ...
    controller.evaluate()
    assert controller.stage == STAGE_CHEAP_METHOD
    assert gate.limit == 5
    # ... and only a full recovery to stage 0 restores it.
    pin_pressure(controller, 0.1)
    controller.evaluate()
    assert controller.stage == STAGE_ADMISSION_SHRINK
    assert gate.limit == 5
    controller.evaluate()
    assert controller.stage == STAGE_NORMAL
    assert gate.limit == 10


def test_gate_set_limit_clamps_and_never_evicts():
    gate = AdmissionGate(4)
    leases = [gate.try_acquire("solve", 1) for _ in range(4)]
    assert all(leases)
    assert gate.set_limit(2) == 2
    # Holders keep their tokens; only new admissions see the limit.
    assert gate.in_use == 4
    assert gate.try_acquire("solve", 1) is None
    for lease in leases[:3]:
        gate.release(lease)
    assert gate.try_acquire("solve", 1) is not None  # 1 + 1 <= 2
    assert gate.set_limit(99) == 4   # clamped to capacity
    assert gate.set_limit(0) == 1    # clamped to at least one token
    assert gate.set_limit(4) == 4


def test_breaker_pressure_holds_but_cannot_escalate():
    controller = make_controller(raise_after=1)

    class _OpenBreaker:
        state = "open"

    class _BrokenDisk:
        breaker = _OpenBreaker()

    class _BrokenEngine:
        disk = _BrokenDisk()

    controller.engine = _BrokenEngine()
    components = controller.pressure()
    assert components["breaker"] == pytest.approx(0.6)
    # 0.6 sits between lower (0.55) and raise (0.85): it keeps the
    # streak counters pinned at zero, neither escalating nor lowering.
    controller.evaluate()
    assert controller.stage == STAGE_NORMAL


def test_fleet_pressure_holds_but_cannot_escalate_alone():
    """The router-pushed fleet pressure (X-Fleet-Pressure) is a first-
    class component, but — like an open disk breaker — it is capped at
    ``breaker_pressure``: a shrunken fleet holds a degraded stage yet
    never sheds traffic it is not actually receiving."""
    controller = make_controller(raise_after=1)
    assert controller.pressure()["fleet"] == 0.0
    controller.fleet_pressure = 0.5
    components = controller.pressure()
    assert components["fleet"] == pytest.approx(0.5)
    assert components["overall"] == pytest.approx(0.5)
    # Half the fleet dead stamps 1.0; the component caps between the
    # thresholds (0.55 < 0.6 < 0.85).
    controller.fleet_pressure = 1.0
    assert controller.pressure()["fleet"] == pytest.approx(0.6)
    controller.fleet_pressure = -3.0
    assert controller.pressure()["fleet"] == 0.0
    controller.fleet_pressure = 1.0
    controller.evaluate()
    assert controller.stage == STAGE_NORMAL  # holds, never escalates
    # ... but it does keep an escalated stage from recovering.
    controller.force_stage(STAGE_ADMISSION_SHRINK, hold=False)
    for _ in range(controller.config.lower_after * 4):
        controller.evaluate()
    assert controller.stage == STAGE_ADMISSION_SHRINK


def test_force_stage_pins_and_release_resumes():
    controller = make_controller(raise_after=1)
    controller.force_stage(STAGE_STALE_CACHE)
    assert controller.stage == STAGE_STALE_CACHE
    assert controller.stale_only
    pin_pressure(controller, 0.0)
    controller.evaluate()  # forced: the ladder must not move
    assert controller.stage == STAGE_STALE_CACHE
    controller.release()
    for _ in range(controller.config.lower_after * 4):
        controller.evaluate()
    assert controller.stage == STAGE_NORMAL


def test_force_stage_rejects_out_of_range():
    controller = make_controller()
    with pytest.raises(ConfigurationError):
        controller.force_stage(99)
    with pytest.raises(ConfigurationError):
        controller.force_stage(-1)


def test_transitions_fire_callback_and_counter():
    seen = []
    controller = make_controller(raise_after=1)
    controller.on_transition = lambda old, new, score: \
        seen.append((old, new))
    pin_pressure(controller, 0.95)
    controller.evaluate()
    controller.evaluate()
    assert seen == [(0, 1), (1, 2)]
    assert controller.transitions == 2


# ----------------------------------------------------------------------
# End to end: the full ladder on a live daemon
# ----------------------------------------------------------------------


@pytest.fixture()
def handle():
    config = ServiceConfig(
        port=0, batch_window=0.005, gate_capacity=8,
        brownout=BrownoutConfig(enabled=True, interval=60.0),
    )
    with start_in_thread(
        config, engine=BatchSolver(EngineConfig())
    ) as service_handle:
        yield service_handle


def set_stage(handle, stage: int) -> None:
    """Force the loop-confined controller from the test thread."""
    done = threading.Event()

    def _apply() -> None:
        handle.service.brownout.force_stage(stage)
        done.set()

    handle.loop.call_soon_threadsafe(_apply)
    assert done.wait(5.0)


def test_full_ladder_walk_end_to_end(handle):
    service = handle.service
    client = ServiceClient(*handle.address)
    cached = point_request(6)
    uncached = point_request(7, rate=0.02)
    local = solve(cached)

    # Stage 0: byte-identical service, full token pool.
    envelope = client.solve_raw(cached)
    assert "degraded" not in envelope
    assert decode_equal(envelope, local)
    assert service.gate.limit == service.gate.capacity

    # Stage 1 (admission-shrink): limit halves, answers stay exact.
    set_stage(handle, STAGE_ADMISSION_SHRINK)
    assert service.gate.limit == 4
    envelope = client.solve_raw(cached)
    assert "degraded" not in envelope
    assert decode_equal(envelope, local)

    # Stage 2 (cheap-method): rewritten to the robust chain's cheapest
    # path, provenance-stamped, and byte-identical to a *local* solve
    # of the rewritten request.
    set_stage(handle, STAGE_CHEAP_METHOD)
    envelope = client.solve_raw(uncached)
    assert envelope["degraded"] is True
    assert envelope["degraded_stage"] == "cheap-method"
    robust_local = solve(
        dataclasses.replace(uncached, method=SolveMethod.ROBUST)
    )
    assert decode_equal(envelope, robust_local)
    # A request that already asked for ROBUST is not "degraded".
    already_robust = dataclasses.replace(
        point_request(5), method=SolveMethod.ROBUST
    )
    envelope = client.solve_raw(already_robust)
    assert "degraded" not in envelope

    # Stage 3 (stale-cache): the stage-0 hit is served from cache with
    # the degraded stamp; a cold request fast-503s without solving.
    set_stage(handle, STAGE_STALE_CACHE)
    lookups_before = service.engine.stats.snapshot()["solves"]
    envelope = client.solve_raw(cached)
    assert envelope["degraded"] is True
    assert envelope["degraded_stage"] == "stale-cache"
    assert envelope["from_cache"] is True
    assert decode_equal(envelope, local)
    cold = point_request(9, rate=0.03)
    with pytest.raises(AdmissionRejectedError) as excinfo:
        client.solve(cold)
    assert excinfo.value.kind == "brownout_rejected"
    assert excinfo.value.retry_after >= 0.0
    assert service.engine.stats.snapshot()["solves"] == lookups_before

    # Stage 4 (fast-503): everything is cleared before the gate.
    set_stage(handle, STAGE_FAST_503)
    offered_before = service.gate.offered
    with pytest.raises(AdmissionRejectedError) as excinfo:
        client.solve(cached)
    assert excinfo.value.kind == "brownout_rejected"
    assert service.gate.offered == offered_before  # never reached it

    # Recovery: stage 0 restores the full pool and exact service.
    set_stage(handle, STAGE_NORMAL)
    assert service.gate.limit == service.gate.capacity
    envelope = client.solve_raw(cached)
    assert "degraded" not in envelope
    assert decode_equal(envelope, local)


def decode_equal(envelope: dict, local) -> bool:
    from repro.service.protocol import decode_result

    remote = decode_result(envelope["result"])
    if remote != local:
        return False
    for field in ("blocking", "throughput", "mean_occupancy"):
        r, l = getattr(remote, field), getattr(local, field)
        if isinstance(r, float) and r.hex() != l.hex():
            return False
    return True


def test_batch_at_stale_stage_serves_hits_and_marks_misses(handle):
    client = ServiceClient(*handle.address)
    warm = point_request(6)
    cold = point_request(11, rate=0.04)
    local = solve(warm)
    client.solve(warm)  # prime the cache at stage 0
    set_stage(handle, STAGE_STALE_CACHE)
    results = client.solve_many([warm, cold])
    assert results[0] == local
    assert getattr(results[1], "failed", False)
    assert results[1].error_type == "BrownoutError"


def test_brownout_observable_in_health_and_metrics(handle):
    service = handle.service
    client = ServiceClient(*handle.address)
    health = client.health()
    block = health["brownout"]
    assert block["stage_name"] == "normal"
    assert set(block["pressure"]) >= {"gate", "queue", "lag",
                                      "breaker", "overall"}
    assert health["gate"]["limit"] == service.gate.capacity

    set_stage(handle, STAGE_ADMISSION_SHRINK)
    set_stage(handle, STAGE_CHEAP_METHOD)
    client.solve_raw(point_request(4))          # degraded response
    set_stage(handle, STAGE_FAST_503)
    with pytest.raises(AdmissionRejectedError):
        client.solve(point_request(4))          # shed

    assert client.metric_value("repro_service_brownout_stage") == 4.0
    assert client.metric_value(
        "repro_service_brownout_transitions_total",
        **{"from": "normal", "to": "admission-shrink"},
    ) >= 1.0
    assert client.metric_value(
        "repro_service_degraded_responses_total", stage="cheap-method"
    ) >= 1.0
    assert client.metric_value(
        "repro_service_brownout_shed_total", **{"class": "solve"}
    ) >= 1.0
    page = client.metrics()
    assert "repro_service_brownout_pressure" in page
    health = client.health()
    assert health["brownout"]["stage_name"] == "fast-503"
    assert health["brownout"]["transitions"] >= 3
