"""The package's structured key=value logger."""

from __future__ import annotations

import io
import logging

from repro.logging import LOGGER_NAME, configure, get_logger, kv


class TestKv:
    def test_preserves_key_order(self):
        assert kv(b=1, a=2) == "b=1 a=2"

    def test_compacts_floats(self):
        assert kv(x=0.123456789) == "x=0.123457"
        assert kv(x=1e-12) == "x=1e-12"

    def test_quotes_awkward_strings(self):
        assert kv(msg="two words") == "msg='two words'"
        assert kv(msg="a=b") == "msg='a=b'"
        assert kv(msg="") == "msg=''"
        assert kv(msg="plain") == "msg=plain"


class TestLoggerHierarchy:
    def test_default_is_package_root(self):
        assert get_logger().name == LOGGER_NAME

    def test_child_names_are_namespaced(self):
        assert get_logger("sim.crossbar").name == "repro.sim.crossbar"
        assert get_logger("repro.robust").name == "repro.robust"


class TestConfigure:
    def teardown_method(self):
        # Remove any handler this test installed.
        configure(logging.WARNING, stream=io.StringIO())
        logger = get_logger()
        for handler in list(logger.handlers):
            if not isinstance(handler, logging.NullHandler):
                logger.removeHandler(handler)

    def test_emits_structured_lines(self):
        stream = io.StringIO()
        configure(logging.INFO, stream=stream)
        get_logger("test").info("solver attempt %s", kv(solver="mva"))
        line = stream.getvalue().strip()
        assert "level=INFO" in line
        assert "logger=repro.test" in line
        assert line.endswith("solver attempt solver=mva")

    def test_idempotent_reconfiguration(self):
        first = io.StringIO()
        second = io.StringIO()
        configure(logging.INFO, stream=first)
        configure(logging.INFO, stream=second)
        get_logger("test").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1

    def test_silent_below_level(self):
        stream = io.StringIO()
        configure(logging.WARNING, stream=stream)
        get_logger("test").info("quiet")
        assert stream.getvalue() == ""
