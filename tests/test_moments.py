"""Tests for higher-order moments and the occupancy distribution."""

from __future__ import annotations

import math

import pytest

from repro.core.moments import (
    carried_peakedness,
    concurrency_covariance,
    concurrency_variance,
    factorial_moment,
    occupancy_pmf,
    occupancy_variance,
    time_congestion,
)
from repro.core.productform import solve_brute_force
from repro.core.state import SwitchDimensions, permutation
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError

CONFIGS = [
    pytest.param(
        SwitchDimensions(5, 5),
        [TrafficClass.poisson(0.3, name="p")],
        id="poisson",
    ),
    pytest.param(
        SwitchDimensions(4, 6),
        [
            TrafficClass.poisson(0.2, name="p"),
            TrafficClass(alpha=0.08, beta=0.3, name="pascal"),
        ],
        id="poisson+pascal",
    ),
    pytest.param(
        SwitchDimensions(6, 5),
        [
            TrafficClass.bernoulli(3, 0.15, name="bern"),
            TrafficClass.poisson(0.05, a=2, name="wide"),
        ],
        id="bernoulli+wide",
    ),
]


@pytest.mark.parametrize("dims,classes", CONFIGS)
class TestAgainstBruteForce:
    def test_first_moment_is_concurrency(self, dims, classes):
        dist = solve_brute_force(dims, classes)
        for r in range(len(classes)):
            assert factorial_moment(dims, classes, r, 1) == pytest.approx(
                dist.concurrency(r), rel=1e-10
            )

    def test_variance(self, dims, classes):
        dist = solve_brute_force(dims, classes)
        for r in range(len(classes)):
            assert concurrency_variance(dims, classes, r) == pytest.approx(
                dist.concurrency_variance(r), rel=1e-9, abs=1e-14
            )

    def test_covariance(self, dims, classes):
        if len(classes) < 2:
            pytest.skip("needs two classes")
        dist = solve_brute_force(dims, classes)
        assert concurrency_covariance(
            dims, classes, 0, 1
        ) == pytest.approx(
            dist.concurrency_covariance(0, 1), rel=1e-8, abs=1e-13
        )

    def test_occupancy_pmf(self, dims, classes):
        dist = solve_brute_force(dims, classes)
        fast = occupancy_pmf(dims, classes)
        slow = dist.occupancy_distribution()
        assert len(fast) == len(slow)
        for f, s in zip(fast, slow):
            assert f == pytest.approx(s, rel=1e-9, abs=1e-15)

    def test_occupancy_variance(self, dims, classes):
        dist = solve_brute_force(dims, classes)
        assert occupancy_variance(dims, classes) == pytest.approx(
            dist.occupancy_variance(), rel=1e-9, abs=1e-14
        )

    def test_time_congestion(self, dims, classes):
        dist = solve_brute_force(dims, classes)
        for r in range(len(classes)):
            assert time_congestion(dims, classes, r) == pytest.approx(
                dist.time_congestion(r), rel=1e-9, abs=1e-15
            )


class TestStructuralProperties:
    def test_classes_negatively_correlated(self):
        """Competing for shared fabric implies Cov <= 0."""
        dims = SwitchDimensions(4, 4)
        classes = [
            TrafficClass.poisson(0.5, name="a"),
            TrafficClass.poisson(0.4, name="b"),
        ]
        assert concurrency_covariance(dims, classes, 0, 1) < 0.0

    def test_poisson_closed_form_second_moment(self):
        """E[k(k-1)] = rho^2 Q(N-2aI)/Q(N) (the P factors cancel the
        ones inside the G ratio)."""
        from repro.core.convolution import log_q_grid

        dims = SwitchDimensions(6, 7)
        classes = [TrafficClass.poisson(0.25, a=1)]
        lq = log_q_grid(dims, classes)
        rho = classes[0].rho
        closed = rho**2 * math.exp(lq[4, 5] - lq[6, 7])
        assert factorial_moment(dims, classes, 0, 2) == pytest.approx(
            closed, rel=1e-10
        )

    def test_carried_peakedness_clipped_by_blocking(self):
        """Heavy blocking pins the occupancy near capacity, crushing
        the carried variance: carried Z falls far below the offered Z
        and shrinks as blocking grows."""
        cls = TrafficClass(alpha=0.2, beta=0.5, name="peaky")
        z_small = carried_peakedness(SwitchDimensions(3, 3), [cls], 0)
        z_big = carried_peakedness(SwitchDimensions(8, 8), [cls], 0)
        assert z_small < cls.peakedness
        assert z_big < z_small  # more saturation -> flatter occupancy

    def test_poisson_variance_near_mean_at_light_load(self):
        """Nearly-unblocked Poisson carried traffic stays ~Poisson."""
        dims = SwitchDimensions(20, 20)
        classes = [TrafficClass.poisson(1e-4)]
        mean = factorial_moment(dims, classes, 0, 1)
        var = concurrency_variance(dims, classes, 0)
        assert var == pytest.approx(mean, rel=0.05)

    def test_smooth_class_variance_is_stable(self):
        """The strongly smooth regime that breaks the naive recursions."""
        dims = SwitchDimensions(12, 12)
        classes = [
            TrafficClass.from_moments(mean=0.5, peakedness=0.75, name="s")
        ]
        dist = solve_brute_force(dims, classes)
        assert concurrency_variance(dims, classes, 0) == pytest.approx(
            dist.concurrency_variance(0), rel=1e-9
        )

    def test_pmf_sums_to_one(self):
        dims = SwitchDimensions(7, 9)
        classes = [
            TrafficClass.poisson(0.1),
            TrafficClass(alpha=0.05, beta=0.2, a=3),
        ]
        assert math.fsum(occupancy_pmf(dims, classes)) == pytest.approx(1.0)


class TestValidation:
    def test_bad_order(self):
        with pytest.raises(ConfigurationError):
            factorial_moment(
                SwitchDimensions(2, 2), [TrafficClass.poisson(0.1)], 0, 0
            )

    def test_bad_class_index(self):
        with pytest.raises(ConfigurationError):
            factorial_moment(
                SwitchDimensions(2, 2), [TrafficClass.poisson(0.1)], 3
            )

    def test_empty_classes_for_pmf(self):
        with pytest.raises(ConfigurationError):
            occupancy_pmf(SwitchDimensions(2, 2), [])
