"""Differential equivalence locks for the vectorized NumPy kernels.

The kernels in :mod:`repro.core.kernels` re-implement the Algorithm 1
sweeps and the Algorithm 2 ratio sweep as whole-column NumPy array
operations.  Their contract, enforced here:

* ``log`` and ``float`` modes are **bitwise identical** to the
  pure-python reference sweeps (``np.array_equal`` on the full grids,
  matching exception behavior at the float-mode overflow boundary);
* ``scaled`` is tolerance-equivalent on the fast path and falls back
  to the reference sweep — bit for bit — when a column's dynamic range
  leaves float64 (the ``1/n1!`` cliff past ``n1 ~ 178``);
* ``mva-numpy`` agrees with the scalar reference to its registered
  1e-8 differential tolerance;
* the eq. 9 auxiliary recursion ``V(n, r) = Q(n - a_r I) + b_r
  V(n - a_r I, r)`` holds pointwise against direct scalar evaluation
  (hypothesis property, profiles from ``tests/conftest.py``);
* the ``repro.verify`` fuzzer finds **zero** old-vs-new disagreements
  over seeded sampled configs per numeric mode, and a deliberately
  broken kernel is caught *and shrunk* to a minimal JSON reproducer;
* the golden corpus (including ``kernel_edges.json``) stays green when
  rebuilt under either kernel family;
* the service wire path serves byte-identical ``/solve`` envelopes
  with the NumPy kernels selected (the ``log`` kernel's bitwise
  guarantee, observed end to end on Table 1 configurations).

The seeded fuzz case count scales with ``KERNEL_EQUIV_CASES`` (default
100 per mode here; the CI ``kernel-equivalence`` job raises it, and
``benchmarks/bench_kernels.py`` runs the full >= 2000-case campaign).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import kernels
from repro.core.convolution import (
    _sweep_float,
    _sweep_log,
    _sweep_scaled,
    log_q_grid,
    solve_convolution,
)
from repro.core.kernels import (
    default_kernel,
    resolve_kernel,
    scaled_fallback_count,
    set_default_kernel,
    sweep_float,
    sweep_log,
    sweep_scaled,
)
from repro.core.mva import solve_mva
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError, OverflowInRecursionError
from repro.methods import SolveMethod
from repro.verify.differential import run_differential
from repro.verify.generators import ConfigSampler

#: Seeded case count per numeric mode for the fuzz smoke (the full
#: acceptance campaign lives in benchmarks/bench_kernels.py).
FUZZ_CASES = int(os.environ.get("KERNEL_EQUIV_CASES", "100"))

#: (classic, numpy-pinned) method pairs per numeric mode.
KERNEL_PAIRS = {
    "log": (SolveMethod.CONVOLUTION, SolveMethod.CONVOLUTION_NUMPY),
    "scaled": (
        SolveMethod.CONVOLUTION_SCALED,
        SolveMethod.CONVOLUTION_SCALED_NUMPY,
    ),
    "float": (
        SolveMethod.CONVOLUTION_FLOAT,
        SolveMethod.CONVOLUTION_FLOAT_NUMPY,
    ),
    "mva": (SolveMethod.MVA, SolveMethod.MVA_NUMPY),
}


def sampled_configs(seed: int, count: int):
    sampler = ConfigSampler(seed=seed)
    return [sampler.sample() for _ in range(count)]


def sweep_classes_of(config):
    return [c for c in config.classes if c.beta >= 0]


# ----------------------------------------------------------------------
# Differential fuzz: zero old-vs-new mismatches per numeric mode
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mode", sorted(KERNEL_PAIRS))
def test_fuzz_zero_disagreements_per_mode(mode):
    """The registered pair tolerance holds over seeded sampled configs."""
    old, new = KERNEL_PAIRS[mode]
    methods = [old.value, new.value]
    disagreements = []
    for config in sampled_configs(seed=2024, count=FUZZ_CASES):
        report = run_differential(config, methods=methods)
        disagreements.extend(report.disagreements)
    assert not disagreements, "\n".join(
        d.describe() for d in disagreements[:10]
    )


# ----------------------------------------------------------------------
# Bitwise identity: log and float sweeps
# ----------------------------------------------------------------------


def test_sweep_log_bitwise_equal_to_reference():
    checked = 0
    for config in sampled_configs(seed=11, count=60):
        sweep = sweep_classes_of(config)
        if not sweep:
            continue
        ref = _sweep_log(config.dims, sweep)
        new = sweep_log(config.dims, sweep)
        assert np.array_equal(ref, new), config.describe()
        checked += 1
    assert checked >= 40


def test_sweep_float_bitwise_equal_including_overflow_boundary():
    checked = 0
    for config in sampled_configs(seed=12, count=60):
        sweep = sweep_classes_of(config)
        if not sweep:
            continue
        try:
            ref, ref_err = _sweep_float(config.dims, sweep), None
        except OverflowInRecursionError as exc:
            ref, ref_err = None, str(exc)
        try:
            new, new_err = sweep_float(config.dims, sweep), None
        except OverflowInRecursionError as exc:
            new, new_err = None, str(exc)
        assert ref_err == new_err, config.describe()
        if ref is not None:
            assert np.array_equal(ref, new), config.describe()
        checked += 1
    assert checked >= 40


def test_float_mode_raises_identically_at_factorial_cliff():
    dims = SwitchDimensions(185, 2)
    classes = (TrafficClass.poisson(0.05),)
    with pytest.raises(OverflowInRecursionError) as ref:
        log_q_grid(dims, classes, mode="float", kernel="python")
    with pytest.raises(OverflowInRecursionError) as new:
        log_q_grid(dims, classes, mode="float", kernel="numpy")
    assert str(ref.value) == str(new.value)


def test_full_solution_grids_bitwise_equal_log_mode():
    """End-to-end solve (folds, h grids, measures) is bitwise equal."""
    for config in sampled_configs(seed=13, count=30):
        ref = solve_convolution(
            config.dims, config.classes, mode="log", kernel="python"
        )
        new = solve_convolution(
            config.dims, config.classes, mode="log", kernel="numpy"
        )
        assert np.array_equal(ref.log_q, new.log_q)
        for r in range(len(config.classes)):
            assert np.array_equal(ref.h[r], new.h[r])
            assert ref.blocking(r).hex() == new.blocking(r).hex()
            assert ref.concurrency(r).hex() == new.concurrency(r).hex()
        assert ref.method == new.method == "convolution/log"
        assert (ref.kernel, new.kernel) == ("python", "numpy")


# ----------------------------------------------------------------------
# Scaled kernel: tolerance equivalence and the reference fallback
# ----------------------------------------------------------------------


def test_sweep_scaled_tolerance_equivalent():
    checked = 0
    for config in sampled_configs(seed=14, count=60):
        sweep = sweep_classes_of(config)
        if not sweep:
            continue
        ref = _sweep_scaled(config.dims, sweep)
        new = sweep_scaled(config.dims, sweep)
        finite = np.isfinite(ref)
        assert np.array_equal(finite, np.isfinite(new))
        if finite.any():
            rel = np.max(
                np.abs(ref[finite] - new[finite])
                / np.maximum(np.abs(ref[finite]), 1.0)
            )
            assert rel < 1e-10, (rel, config.describe())
        checked += 1
    assert checked >= 40


def test_scaled_kernel_falls_back_past_factorial_cliff():
    """``exp(-lgamma(n1+1)) == 0`` forces the reference sweep, bit for bit."""
    dims = SwitchDimensions(185, 3)
    classes = (
        TrafficClass.poisson(0.05),
        TrafficClass(alpha=0.02, beta=0.01, mu=1.0, a=2),
    )
    assert math.exp(-math.lgamma(dims.n1 + 1)) == 0.0  # in fallback land
    before = scaled_fallback_count()
    new = sweep_scaled(dims, classes)
    assert scaled_fallback_count() == before + 1
    ref = _sweep_scaled(dims, classes)
    assert np.array_equal(ref, new)  # fallback IS the reference


def test_scaled_fast_path_used_below_the_cliff():
    dims = SwitchDimensions(32, 32)
    classes = (TrafficClass.poisson(0.05),)
    before = scaled_fallback_count()
    sweep_scaled(dims, classes)
    assert scaled_fallback_count() == before


# ----------------------------------------------------------------------
# MVA kernel: registered tolerance
# ----------------------------------------------------------------------


def test_mva_numpy_within_registered_tolerance():
    tol = SolveMethod.MVA.rel_tolerance
    checked = 0
    for config in sampled_configs(seed=15, count=60):
        try:
            ref = solve_mva(config.dims, config.classes, kernel="python")
        except Exception:
            continue  # smooth-stability guard etc. — covered by fuzz
        new = solve_mva(config.dims, config.classes, kernel="numpy")
        for r in range(len(config.classes)):
            for measure in ("blocking", "concurrency", "call_acceptance"):
                a = getattr(ref, measure)(r)
                b = getattr(new, measure)(r)
                scale = max(abs(a), abs(b), 1e-12)
                assert abs(a - b) <= tol * scale, (measure, r, a, b)
        assert (ref.kernel, new.kernel) == ("python", "numpy")
        checked += 1
    assert checked >= 30


# ----------------------------------------------------------------------
# Base row, empty class set
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kernel", kernels.KERNEL_FAMILIES)
@pytest.mark.parametrize("mode", ("log", "scaled", "float"))
def test_base_row_is_inverse_factorial(mode, kernel):
    """``Q(n1, 0) = 1/n1!`` byte-exactly in every mode and family."""
    dims = SwitchDimensions(12, 3)
    lq = log_q_grid(
        dims, (TrafficClass.poisson(0.1),), mode=mode, kernel=kernel
    )
    for m in range(dims.n1 + 1):
        want = -math.lgamma(m + 1)
        if mode == "log":
            assert float(lq[m, 0]).hex() == want.hex(), m
        elif mode == "float":
            # the float sweep carries Q linearly and logs at the end
            assert float(lq[m, 0]).hex() == math.log(math.exp(want)).hex()
        else:
            assert lq[m, 0] == pytest.approx(want, rel=1e-12, abs=1e-12)


@pytest.mark.parametrize("kernel", kernels.KERNEL_FAMILIES)
@pytest.mark.parametrize("mode", ("log", "scaled", "float"))
def test_empty_class_set_rejected_identically(mode, kernel):
    with pytest.raises(ConfigurationError):
        log_q_grid(SwitchDimensions(4, 4), (), mode=mode, kernel=kernel)


# ----------------------------------------------------------------------
# Hypothesis property: eq. 9 pointwise for the vectorized V recursion
# ----------------------------------------------------------------------


@given(
    n1=st.integers(min_value=1, max_value=9),
    n2=st.integers(min_value=1, max_value=9),
    alpha=st.floats(min_value=1e-3, max_value=0.8),
    b=st.floats(min_value=1e-3, max_value=0.6),
    a=st.integers(min_value=1, max_value=3),
    with_poisson=st.booleans(),
)
def test_vectorized_v_recursion_satisfies_eq9(
    n1, n2, alpha, b, a, with_poisson
):
    """``V(n, r) = Q(n - a_r I) + b_r V(n - a_r I, r)`` pointwise (eq. 9),
    with ``V == 0`` whenever any coordinate of ``n - a_r I`` is negative,
    checked against direct scalar float evaluation."""
    mu = 1.0
    classes = [TrafficClass(alpha=alpha, beta=b * mu, mu=mu, a=a)]
    if with_poisson:
        classes.append(TrafficClass.poisson(0.1))
    dims = SwitchDimensions(n1, n2)
    lq, lv = sweep_log(dims, classes, collect_v=True)
    cls = classes[0]
    V = np.where(np.isfinite(lv[0]), np.exp(lv[0]), 0.0)
    Q = np.where(np.isfinite(lq), np.exp(lq), 0.0)
    for m1 in range(n1 + 1):
        for m2 in range(1, n2 + 1):
            inside = m1 >= a and m2 >= a
            q_shift = float(Q[m1 - a, m2 - a]) if inside else 0.0
            v_shift = float(V[m1 - a, m2 - a]) if inside else 0.0
            want = q_shift + cls.b * v_shift
            got = float(V[m1, m2])
            assert got == pytest.approx(want, rel=1e-9, abs=0.0), (
                f"eq. 9 violated at ({m1}, {m2}): {got!r} != {want!r}"
            )


# ----------------------------------------------------------------------
# Registry, knob and engine dispatch
# ----------------------------------------------------------------------


def test_numpy_methods_registered():
    for mode, (old, new) in KERNEL_PAIRS.items():
        assert old.kernel_family is None
        assert new.kernel_family == "numpy"
        assert new.rel_tolerance == old.rel_tolerance
        if mode in ("log", "scaled", "float"):
            assert new.convolution_mode == old.convolution_mode == mode
    assert SolveMethod.CONVOLUTION_NUMPY.is_grid
    assert SolveMethod.CONVOLUTION_SCALED_NUMPY.is_grid
    assert not SolveMethod.CONVOLUTION_FLOAT_NUMPY.is_grid
    assert SolveMethod.coerce("convolution-numpy/log") is (
        SolveMethod.CONVOLUTION_NUMPY
    )
    assert SolveMethod.coerce("convolution-numpy/scaled") is (
        SolveMethod.CONVOLUTION_SCALED_NUMPY
    )


def test_engine_dispatch_routes_kernel_family():
    from repro.api import SolveRequest
    from repro.engine import BatchSolver, EngineConfig

    classes = (TrafficClass.poisson(0.05),)
    engine = BatchSolver(EngineConfig())
    ref = engine.solution_for(
        SolveRequest.square(6, classes, method=SolveMethod.CONVOLUTION)
    )
    new = engine.solution_for(
        SolveRequest.square(6, classes, method=SolveMethod.CONVOLUTION_NUMPY)
    )
    assert ref.method == new.method == "convolution/log"
    assert (ref.kernel, new.kernel) == ("python", "numpy")
    assert np.array_equal(ref.log_q, new.log_q)
    mva_new = engine.solution_for(
        SolveRequest.square(6, classes, method=SolveMethod.MVA_NUMPY)
    )
    assert mva_new.method == "mva" and mva_new.kernel == "numpy"


def test_kernel_knob_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    assert default_kernel() == "python"
    monkeypatch.setenv("REPRO_KERNELS", "numpy")
    assert default_kernel() == "numpy"
    previous = set_default_kernel("python")
    try:
        assert previous is None
        assert default_kernel() == "python"  # override beats env
        assert resolve_kernel(None) == "python"
        assert resolve_kernel("numpy") == "numpy"
    finally:
        set_default_kernel(previous)
    assert default_kernel() == "numpy"  # env visible again
    with pytest.raises(ConfigurationError):
        resolve_kernel("fortran")
    monkeypatch.setenv("REPRO_KERNELS", "cython")
    with pytest.raises(ConfigurationError):
        default_kernel()


def test_knob_selects_numpy_for_default_calls():
    previous = set_default_kernel("numpy")
    try:
        solution = solve_convolution(
            SwitchDimensions(5, 5), (TrafficClass.poisson(0.1),)
        )
        assert solution.kernel == "numpy"
        assert solution.method == "convolution/log"  # label unchanged
    finally:
        set_default_kernel(previous)


# ----------------------------------------------------------------------
# A broken kernel is caught and shrunk to a minimal JSON reproducer
# ----------------------------------------------------------------------


def _broken_sweep_log(dims, classes, collect_v=False):
    """The vectorized log sweep with a planted relative-scale defect.

    A *uniform additive* log-space bias would cancel in every
    ``h = exp(lq_shifted - lq)`` ratio; scaling instead perturbs the
    grid's internal ratios, which every measure depends on.
    """
    result = sweep_log(dims, classes, collect_v=collect_v)
    lq = result[0] if collect_v else result
    lq = lq * (1.0 + 1e-3)
    return (lq, result[1]) if collect_v else lq


def test_broken_numpy_kernel_is_shrunk_to_json_reproducer(
    monkeypatch, tmp_path
):
    from repro.verify.runner import VerifyOptions, run_verify

    monkeypatch.setattr(kernels, "sweep_log", _broken_sweep_log)

    options = VerifyOptions(
        seed=5,
        budget_seconds=60.0,
        max_configs=50,
        repro_dir=tmp_path,
        skip_named=True,
        invariants=(),
        max_failures=1,
    )
    report = run_verify(options)
    assert report.failures, "planted kernel bug was never caught"
    repros = sorted(Path(tmp_path).glob("repro-*.json"))
    assert repros, "no JSON reproducer written"
    payload = json.loads(repros[0].read_text())
    assert payload["kind"] == "differential"
    # The broken log sweep feeds every numpy convolution family member,
    # so the disagreeing pair names at least one "-numpy" method.
    assert "-numpy" in payload["label"], payload["label"]
    # Shrunk: the reproducer config never grew past the sampler's range.
    assert payload["config"]["n1"] * payload["config"]["n2"] <= 49


# ----------------------------------------------------------------------
# Golden corpus stays green under both kernel families
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kernel", kernels.KERNEL_FAMILIES)
def test_kernel_edges_golden_green_for_family(kernel):
    from repro.verify.corpus import GoldenCorpus
    from repro.workloads.kernel_edges import kernel_edges_record

    corpus = GoldenCorpus(Path(__file__).parent / "golden")
    corpus.check("kernel_edges", kernel_edges_record(kernel))


# ----------------------------------------------------------------------
# Service wire path: byte-identical /solve envelopes, numpy selected
# ----------------------------------------------------------------------


@pytest.mark.service
def test_service_solve_bytes_identical_across_kernel_families():
    """Table 1 configs served with the NumPy kernels produce the exact
    same ``"result"`` fragment bytes as a pure-python daemon.

    The default method is ``convolution`` (log mode), where the kernel
    contract is *bitwise* — so the serialized result must match byte
    for byte.  The kernel knob is process-wide and the two daemons
    share this process, so they run sequentially, each under its own
    knob setting.  Envelope fields that legitimately vary (request id,
    ``elapsed_ms``) are outside the compared fragment.
    """
    import http.client

    from repro.engine import BatchSolver, EngineConfig
    from repro.service import ServiceConfig, start_in_thread
    from repro.workloads.scenarios import TABLE1_PAPER

    def table1_requests():
        from repro.api import SolveRequest

        requests = []
        for n in (4, 8, 16):
            rho1, rho2 = TABLE1_PAPER[n]
            for rho, a in ((rho1, 1), (rho2, 2)):
                requests.append(
                    SolveRequest.square(
                        n,
                        [
                            TrafficClass.from_aggregate(
                                rho, 0.0, n2=n, mu=1.0, a=a
                            )
                        ],
                    )
                )
        return requests

    def result_fragments(family):
        previous = set_default_kernel(family)
        handle = start_in_thread(
            ServiceConfig(port=0, batch_window=0.0),
            engine=BatchSolver(EngineConfig()),
        )
        try:
            conn = http.client.HTTPConnection(*handle.address)
            fragments = []
            for request in table1_requests():
                body = json.dumps({"request": request.to_dict()})
                conn.request(
                    "POST", "/solve", body,
                    {"Content-Type": "application/json"},
                )
                raw = conn.getresponse().read()
                head = raw.index(b'"result": ') + len(b'"result": ')
                tail = raw.index(b', "coalesced"')
                fragments.append(raw[head:tail])
            conn.close()
            return fragments
        finally:
            handle.stop()
            set_default_kernel(previous)

    python_bytes = result_fragments("python")
    numpy_bytes = result_fragments("numpy")
    assert len(python_bytes) == 6
    for i, (ref, new) in enumerate(zip(python_bytes, numpy_bytes)):
        assert ref == new, f"request {i}: wire bytes diverged"
