"""The typed ServiceConfig surface: loaders, precedence, round-trip.

The contract under test is the PR-7 API redesign: one frozen dataclass
is the only way new code configures the daemon or a cluster, every bad
value raises ``ConfigurationError`` at construction time, the three
loaders layer with fixed precedence (defaults < TOML < env < args),
``to_toml`` round-trips through ``from_toml`` to an equal config, and
the pre-1.2 keyword spellings still work behind DeprecationWarnings.
"""

from __future__ import annotations

import argparse
import dataclasses

import pytest

from repro.exceptions import ConfigurationError
from repro.service import ClusterConfig, ServiceConfig
from repro.service.brownout import BrownoutConfig
from repro.service.config import ENV_PREFIX


def args_namespace(**given) -> argparse.Namespace:
    """An argparse-like namespace where unset flags are None."""
    base = {
        name: None
        for name in (
            "host", "port", "gate_capacity", "point_weight",
            "batch_member_weight", "batch_window", "max_batch",
            "min_hold", "read_timeout", "write_timeout",
            "drain_timeout", "workers", "shard_strategy", "cache_dir",
            "start_method",
        )
    }
    base.update(no_brownout=False, no_keepalive=False)
    base.update(given)
    return argparse.Namespace(**base)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def test_defaults_are_valid_and_frozen():
    config = ServiceConfig()
    assert config.port == 8377
    assert config.cluster.workers == 1
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.port = 1  # type: ignore[misc]


@pytest.mark.parametrize(
    "bad",
    [
        {"gate_capacity": 0},
        {"point_weight": 0},
        {"drain_timeout": -1.0},
        {"cluster": ClusterConfig(workers=2, shard_strategy="reuseport"),
         "port": 0},
    ],
)
def test_bad_service_values_raise_at_construction(bad):
    with pytest.raises(ConfigurationError):
        ServiceConfig(**bad)


@pytest.mark.parametrize(
    "bad",
    [
        {"workers": 0},
        {"shard_strategy": "round-robin"},
        {"start_method": "threads"},
        {"health_interval": 0.0},
        {"max_respawns": -1},
        {"hash_replicas": 0},
        {"spawn_timeout": 0.0},
    ],
)
def test_bad_cluster_values_raise_at_construction(bad):
    with pytest.raises(ConfigurationError):
        ClusterConfig(**bad)


# ----------------------------------------------------------------------
# TOML round-trip
# ----------------------------------------------------------------------


def test_to_toml_round_trips_through_from_toml(tmp_path):
    config = ServiceConfig(
        host="0.0.0.0",
        port=9001,
        gate_capacity=17,
        batch_window=0.004,
        min_hold=0.02,
        read_timeout=None,
        keepalive=False,
        brownout=BrownoutConfig(enabled=False),
        cluster=ClusterConfig(
            workers=3, cache_dir="/tmp/shared-cache",
            hash_replicas=32, start_method="spawn",
        ),
    )
    path = tmp_path / "service.toml"
    path.write_text(config.to_toml())
    assert ServiceConfig.from_toml(path) == config


def test_from_toml_rejects_unknown_keys(tmp_path):
    path = tmp_path / "bad.toml"
    path.write_text("[service]\nporte = 8377\n")
    with pytest.raises(ConfigurationError):
        ServiceConfig.from_toml(path)


def test_from_toml_rejects_invalid_toml(tmp_path):
    path = tmp_path / "broken.toml"
    path.write_text("[service\nport=")
    with pytest.raises(ConfigurationError):
        ServiceConfig.from_toml(path)


# ----------------------------------------------------------------------
# Environment loader
# ----------------------------------------------------------------------


def test_from_env_reads_typed_values():
    config = ServiceConfig.from_env({
        f"{ENV_PREFIX}PORT": "9100",
        f"{ENV_PREFIX}GATE_CAPACITY": "9",
        f"{ENV_PREFIX}MIN_HOLD": "0.25",
        f"{ENV_PREFIX}KEEPALIVE": "false",
        f"{ENV_PREFIX}WORKERS": "4",
        f"{ENV_PREFIX}CACHE_DIR": "/tmp/fleet-cache",
        f"{ENV_PREFIX}BROWNOUT": "0",
        "UNRELATED": "ignored",
    })
    assert config.port == 9100
    assert config.gate_capacity == 9
    assert config.min_hold == pytest.approx(0.25)
    assert config.keepalive is False
    assert config.cluster.workers == 4
    assert config.cluster.cache_dir == "/tmp/fleet-cache"
    assert config.brownout.enabled is False


def test_from_env_rejects_unknown_variable():
    with pytest.raises(ConfigurationError):
        ServiceConfig.from_env({f"{ENV_PREFIX}PROT": "8377"})


def test_from_env_rejects_untyped_garbage():
    with pytest.raises(ConfigurationError):
        ServiceConfig.from_env({f"{ENV_PREFIX}PORT": "over 9000"})


# ----------------------------------------------------------------------
# Args loader and layered precedence
# ----------------------------------------------------------------------


def test_from_args_reads_service_and_cluster_flags():
    config = ServiceConfig.from_args(args_namespace(
        port=9200, workers=2, shard_strategy="hash",
        cache_dir="/tmp/cli-cache", no_brownout=True,
        no_keepalive=True,
    ))
    assert config.port == 9200
    assert config.cluster.workers == 2
    assert config.cluster.cache_dir == "/tmp/cli-cache"
    assert config.brownout.enabled is False
    assert config.keepalive is False


def test_zero_timeout_flags_mean_disabled():
    config = ServiceConfig.from_args(
        args_namespace(read_timeout=0.0, write_timeout=0.0)
    )
    assert config.read_timeout is None
    assert config.write_timeout is None


def test_load_precedence_defaults_toml_env_args(tmp_path):
    path = tmp_path / "layer.toml"
    path.write_text(
        "[service]\nport = 9001\ngate_capacity = 11\nmin_hold = 0.5\n"
        "\n[cluster]\nworkers = 2\n"
    )
    config = ServiceConfig.load(
        toml_path=path,
        environ={
            f"{ENV_PREFIX}GATE_CAPACITY": "22",
            f"{ENV_PREFIX}WORKERS": "3",
        },
        args=args_namespace(workers=4),
    )
    assert config.min_hold == pytest.approx(0.5)  # TOML only
    assert config.port == 9001                    # TOML beats default
    assert config.gate_capacity == 22             # env beats TOML
    assert config.cluster.workers == 4            # args beat env
    assert config.batch_window == pytest.approx(0.002)  # untouched


def test_for_shard_builds_the_per_worker_view():
    config = ServiceConfig(
        host="0.0.0.0", port=8400,
        cluster=ClusterConfig(workers=3, worker_host="127.0.0.1"),
    )
    worker = config.for_shard(2, port=34567)
    assert worker.shard_index == 2
    assert worker.host == "127.0.0.1"
    assert worker.port == 34567
    assert worker.reuse_port is False
    assert worker.cluster.workers == 1  # no nested fleet

    spray = ServiceConfig(
        host="0.0.0.0", port=8400,
        cluster=ClusterConfig(workers=3, shard_strategy="reuseport"),
    ).for_shard(1, port=0)
    assert spray.reuse_port is True
    assert spray.port == 8400  # every worker shares the public port


# ----------------------------------------------------------------------
# Legacy keyword shims
# ----------------------------------------------------------------------


def test_legacy_server_kwargs_warn_but_work():
    from repro.service.server import SolveService

    with pytest.deprecated_call():
        service = SolveService(port=0, gate_capacity=5)
    assert service.config.gate_capacity == 5


def test_legacy_kwargs_and_config_together_are_rejected():
    from repro.service.server import SolveService

    with pytest.raises(ConfigurationError):
        SolveService(config=ServiceConfig(port=0), gate_capacity=5)


def test_unknown_legacy_kwarg_is_rejected():
    from repro.service.server import SolveService

    with pytest.raises(ConfigurationError):
        with pytest.deprecated_call():
            SolveService(port=0, gate_capacty=5)
