"""Unit tests for the event queue and random-stream plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.events import ARRIVAL, DEPARTURE, Event, EventQueue
from repro.sim.rng import RandomStreams


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, ARRIVAL)
        q.push(1.0, DEPARTURE)
        q.push(2.0, ARRIVAL)
        times = [q.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_fifo_tie_break(self):
        q = EventQueue()
        first = q.push(1.0, ARRIVAL, payload="first")
        second = q.push(1.0, ARRIVAL, payload="second")
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"
        assert first.seq < second.seq

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, ARRIVAL)
        assert q and len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() == float("inf")
        q.push(5.0, ARRIVAL)
        assert q.peek_time() == 5.0
        assert len(q) == 1  # peek does not pop

    def test_payload_not_compared(self):
        # Payloads that are not orderable must not break the heap.
        q = EventQueue()
        q.push(1.0, ARRIVAL, payload={"a": 1})
        q.push(1.0, ARRIVAL, payload={"b": 2})
        assert q.pop().payload == {"a": 1}

    def test_version_token_carried(self):
        q = EventQueue()
        event = q.push(1.0, ARRIVAL, version=7)
        assert event.version == 7

    def test_event_ordering_dataclass(self):
        early = Event(time=1.0, seq=0, kind=ARRIVAL)
        late = Event(time=2.0, seq=1, kind=ARRIVAL)
        assert early < late


class TestRandomStreams:
    def test_reproducible(self):
        a = RandomStreams(seed=42, n_classes=2)
        b = RandomStreams(seed=42, n_classes=2)
        assert a.exponential(0, 1.0) == b.exponential(0, 1.0)
        assert np.array_equal(a.choose_ports(8, 2), b.choose_ports(8, 2))

    def test_streams_independent(self):
        """Consuming one class's arrival stream must not perturb
        another's — the common-random-numbers property."""
        a = RandomStreams(seed=1, n_classes=2)
        b = RandomStreams(seed=1, n_classes=2)
        for _ in range(100):
            a.exponential(0, 1.0)  # burn stream 0 on `a` only
        assert a.exponential(1, 1.0) == b.exponential(1, 1.0)

    def test_zero_rate_never_fires(self):
        streams = RandomStreams(seed=0, n_classes=1)
        assert streams.exponential(0, 0.0) == float("inf")
        assert streams.exponential(0, -1.0) == float("inf")

    def test_choose_ports_distinct(self):
        streams = RandomStreams(seed=3, n_classes=1)
        for _ in range(100):
            ports = streams.choose_ports(6, 3)
            assert len(set(ports.tolist())) == 3
            assert all(0 <= p < 6 for p in ports)

    def test_exponential_mean(self):
        streams = RandomStreams(seed=11, n_classes=1)
        rate = 4.0
        samples = [streams.exponential(0, rate) for _ in range(50_000)]
        assert np.mean(samples) == pytest.approx(1.0 / rate, rel=0.05)
