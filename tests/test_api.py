"""Tests for the unified typed solve API (repro.api)."""

from __future__ import annotations

import json

import pytest

from repro.api import SolveRequest, SolveResult, solve, solve_many
from repro.core.convolution import solve_convolution
from repro.core.model import CrossbarModel
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError
from repro.methods import SolveMethod


@pytest.fixture
def classes():
    return (
        TrafficClass.poisson(0.05, name="data"),
        TrafficClass(alpha=0.02, beta=0.01, name="video"),
    )


class TestSolveMethod:
    def test_str_valued(self):
        assert SolveMethod.MVA == "mva"
        assert SolveMethod("convolution-scaled") is SolveMethod.CONVOLUTION_SCALED
        assert json.loads(json.dumps(SolveMethod.EXACT.value)) == "exact"

    def test_coerce_accepts_enum_value_and_alias(self):
        assert SolveMethod.coerce(SolveMethod.MVA) is SolveMethod.MVA
        assert SolveMethod.coerce("mva") is SolveMethod.MVA
        assert SolveMethod.coerce("convolution/log") is SolveMethod.CONVOLUTION
        assert (
            SolveMethod.coerce("convolution/scaled")
            is SolveMethod.CONVOLUTION_SCALED
        )

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            SolveMethod.coerce("oracle")

    def test_grid_property(self):
        assert SolveMethod.CONVOLUTION.is_grid
        assert SolveMethod.CONVOLUTION_SCALED.is_grid
        # The unscaled mode exists to demonstrate overflow; enlarging
        # its grid could change whether it overflows.
        assert not SolveMethod.CONVOLUTION_FLOAT.is_grid
        assert not SolveMethod.MVA.is_grid

    def test_convolution_mode(self):
        assert SolveMethod.CONVOLUTION.convolution_mode == "log"
        assert SolveMethod.CONVOLUTION_SCALED.convolution_mode == "scaled"
        assert SolveMethod.MVA.convolution_mode is None


class TestSolveRequest:
    def test_dims_coercion(self, classes):
        assert SolveRequest(8, classes).dims == SwitchDimensions.square(8)
        assert SolveRequest((4, 6), classes).dims == SwitchDimensions(4, 6)
        assert (
            SolveRequest(SwitchDimensions(3, 5), classes).dims
            == SwitchDimensions(3, 5)
        )

    def test_method_coercion(self, classes):
        assert SolveRequest(4, classes, "mva").method is SolveMethod.MVA
        assert (
            SolveRequest(4, classes, "convolution/log").method
            is SolveMethod.CONVOLUTION
        )

    def test_requires_classes(self):
        with pytest.raises(ConfigurationError):
            SolveRequest(4, ())

    def test_rejects_non_traffic_classes(self):
        with pytest.raises(ConfigurationError):
            SolveRequest(4, ("not-a-class",))

    def test_hashable_and_frozen(self, classes):
        request = SolveRequest.square(8, classes)
        assert hash(request) == hash(SolveRequest.square(8, classes))
        with pytest.raises(AttributeError):
            request.method = SolveMethod.MVA

    def test_cache_key_is_order_insensitive(self, classes):
        a, b = classes
        assert (
            SolveRequest.square(8, (a, b)).cache_key
            == SolveRequest.square(8, (b, a)).cache_key
        )

    def test_cache_key_separates_models(self, classes):
        base = SolveRequest.square(8, classes)
        assert base.cache_key != base.with_dims(9).cache_key
        assert base.cache_key != base.with_method("mva").cache_key

    def test_with_dims_and_method(self, classes):
        request = SolveRequest.square(8, classes)
        assert request.with_dims(16).dims == SwitchDimensions.square(16)
        assert request.with_method("exact").method is SolveMethod.EXACT
        # original untouched
        assert request.dims == SwitchDimensions.square(8)

    def test_dict_round_trip(self, classes):
        request = SolveRequest.create(4, 6, classes, method="mva")
        clone = SolveRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert clone == request


class TestSolveResult:
    def test_from_solution_matches_performance_solution(self, classes):
        dims = SwitchDimensions.square(8)
        solution = solve_convolution(dims, classes)
        request = SolveRequest(dims, classes)
        result = SolveResult.from_solution(request, solution)
        for r in range(len(classes)):
            assert result.blocking[r] == solution.blocking(r)
            assert result.concurrency[r] == solution.concurrency(r)
            assert result.acceptance[r] == solution.call_acceptance(r)
            assert result.throughput[r] == solution.throughput(r)
        assert result.revenue == solution.revenue()
        assert result.mean_occupancy == solution.mean_occupancy()
        assert result.utilization == solution.utilization()
        assert result.total_throughput == solution.total_throughput()

    def test_derived_measures(self, classes):
        result = solve(SolveRequest.square(6, classes))
        for r in range(len(classes)):
            assert result.non_blocking[r] == 1.0 - result.blocking[r]
            assert result.call_congestion[r] == 1.0 - result.acceptance[r]

    def test_execution_metadata_excluded_from_equality(self, classes):
        request = SolveRequest.square(6, classes)
        first = solve(request)
        again = solve(request)
        assert again.from_cache
        assert again.elapsed == 0.0
        assert again == first

    def test_dict_round_trip(self, classes):
        result = solve(SolveRequest.square(6, classes))
        clone = SolveResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert clone == result

    def test_wrong_arity_rejected(self, classes):
        request = SolveRequest.square(6, classes)
        good = solve(request)
        with pytest.raises(ConfigurationError):
            SolveResult(
                request=request,
                blocking=good.blocking[:1],  # one entry short
                concurrency=good.concurrency,
                acceptance=good.acceptance,
                throughput=good.throughput,
                revenue=good.revenue,
                mean_occupancy=good.mean_occupancy,
                utilization=good.utilization,
            )


class TestEntryPoints:
    def test_solve_legacy_form_warns_and_works(self, classes):
        dims = SwitchDimensions.square(6)
        with pytest.warns(DeprecationWarning):
            legacy = solve(dims, list(classes), "convolution")
        assert legacy == solve(SolveRequest(dims, classes))

    def test_solve_rejects_mixed_forms(self, classes):
        request = SolveRequest.square(6, classes)
        with pytest.raises(ConfigurationError):
            solve(request, list(classes))

    def test_solve_requires_classes_with_dims(self):
        with pytest.raises(ConfigurationError):
            solve(SwitchDimensions.square(4))

    def test_solve_many_preserves_order(self, classes):
        requests = [SolveRequest.square(n, classes) for n in (6, 3, 5, 4)]
        results = solve_many(requests)
        assert [r.dims.n1 for r in results] == [6, 3, 5, 4]
        for request, result in zip(requests, results):
            assert result == solve(request)

    def test_model_solve_delegates_to_engine(self, classes):
        model = CrossbarModel.square(7, classes)
        solution = model.solve()
        direct = solve_convolution(SwitchDimensions.square(7), classes)
        for r in range(len(classes)):
            assert solution.blocking(r) == direct.blocking(r)
            assert solution.concurrency(r) == direct.concurrency(r)
        # Repeated solves are memoized: the very same object comes back.
        assert model.solve() is solution

    def test_model_solve_accepts_enum(self, classes):
        model = CrossbarModel.square(5, classes)
        via_enum = model.solve(SolveMethod.MVA)
        via_str = model.solve("mva")
        assert via_enum.blocking(0) == via_str.blocking(0)

    def test_model_solve_unknown_method_rejected(self, classes):
        with pytest.raises(ConfigurationError):
            CrossbarModel.square(5, classes).solve("oracle")
