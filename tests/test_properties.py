"""Property-based tests (hypothesis) for the core invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.convolution import log_q_grid, solve_convolution
from repro.core.generating import q_from_series
from repro.core.productform import solve_brute_force
from repro.core.state import (
    SwitchDimensions,
    iter_states,
    state_space_size,
)
from repro.core.traffic import TrafficClass

# ----------------------------------------------------------------------
# Strategies (shared with test_properties_extensions)
# ----------------------------------------------------------------------

from tests.strategies import classes_strategy, dims_strategy, traffic_class


# ----------------------------------------------------------------------
# Fundamental agreement and bounds
# ----------------------------------------------------------------------


@given(dims=dims_strategy, classes=classes_strategy)
def test_algorithm1_matches_brute_force(dims, classes):
    conv = solve_convolution(dims, classes)
    brute = solve_brute_force(dims, classes)
    for r in range(len(classes)):
        assert conv.non_blocking(r) == pytest.approx(
            brute.non_blocking_probability(r), rel=1e-8, abs=1e-12
        )
        assert conv.concurrency(r) == pytest.approx(
            brute.concurrency(r), rel=1e-8, abs=1e-12
        )


@given(dims=dims_strategy, classes=classes_strategy)
def test_measures_within_physical_bounds(dims, classes):
    solution = solve_convolution(dims, classes)
    for r, cls in enumerate(classes):
        b = solution.non_blocking(r)
        assert 0.0 <= b <= 1.0 + 1e-12
        e = solution.concurrency(r)
        assert -1e-12 <= e <= dims.capacity / cls.a + 1e-9
        acc = solution.call_acceptance(r)
        assert 0.0 <= acc <= 1.0 + 1e-12
    assert 0.0 <= solution.utilization() <= 1.0 + 1e-12


@given(dims=dims_strategy, classes=classes_strategy)
def test_distribution_normalized_and_reversible(dims, classes):
    dist = solve_brute_force(dims, classes)
    assert dist.check_normalized(tol=1e-10)
    assert dist.detailed_balance_residual() < 1e-10


@given(dims=dims_strategy, classes=classes_strategy)
def test_dimension_swap_symmetry(dims, classes):
    """Measures are invariant under exchanging inputs and outputs."""
    forward = solve_convolution(dims, classes)
    swapped = solve_convolution(
        SwitchDimensions(dims.n2, dims.n1), classes
    )
    for r in range(len(classes)):
        assert forward.non_blocking(r) == pytest.approx(
            swapped.non_blocking(r), rel=1e-10, abs=1e-14
        )
        assert forward.concurrency(r) == pytest.approx(
            swapped.concurrency(r), rel=1e-10, abs=1e-14
        )


@given(dims=dims_strategy, classes=classes_strategy)
def test_series_reconstruction_matches_recursion(dims, classes):
    grid = log_q_grid(dims, classes)
    q = q_from_series(dims, classes)
    assert math.log(q) == pytest.approx(
        float(grid[dims.n1, dims.n2]), rel=1e-9
    )


@given(dims=dims_strategy, classes=classes_strategy)
def test_numeric_modes_agree(dims, classes):
    log_mode = solve_convolution(dims, classes, mode="log")
    scaled = solve_convolution(dims, classes, mode="scaled")
    for r in range(len(classes)):
        assert scaled.non_blocking(r) == pytest.approx(
            log_mode.non_blocking(r), rel=1e-9, abs=1e-13
        )


# ----------------------------------------------------------------------
# Structural / monotonicity properties
# ----------------------------------------------------------------------


@given(
    dims=dims_strategy,
    classes=st.lists(traffic_class(max_a=3), min_size=1, max_size=4),
)
def test_state_space_size_matches_enumeration(dims, classes):
    assert state_space_size(dims, classes) == sum(
        1 for _ in iter_states(dims, classes)
    )


@given(
    n=st.integers(min_value=1, max_value=8),
    rho_low=st.floats(min_value=0.01, max_value=0.5),
    factor=st.floats(min_value=1.1, max_value=5.0),
)
def test_single_class_blocking_monotone_in_load(n, rho_low, factor):
    dims = SwitchDimensions.square(n)
    low = solve_convolution(dims, [TrafficClass.poisson(rho_low)])
    high = solve_convolution(
        dims, [TrafficClass.poisson(rho_low * factor)]
    )
    assert high.blocking(0) >= low.blocking(0) - 1e-13
    assert high.concurrency(0) >= low.concurrency(0) - 1e-13


@given(dims=dims_strategy, classes=classes_strategy)
def test_inert_class_does_not_change_measures(dims, classes):
    """A class with alpha = 0 can never start a connection."""
    inert = TrafficClass(alpha=0.0, beta=0.0, name="inert")
    with_inert = solve_convolution(dims, list(classes) + [inert])
    without = solve_convolution(dims, classes)
    for r in range(len(classes)):
        assert with_inert.non_blocking(r) == pytest.approx(
            without.non_blocking(r), rel=1e-10, abs=1e-14
        )


@given(
    n=st.integers(min_value=2, max_value=7),
    alpha=st.floats(min_value=0.01, max_value=0.5),
)
def test_pascal_limits_to_poisson_as_beta_vanishes(n, alpha):
    dims = SwitchDimensions.square(n)
    poisson = solve_convolution(dims, [TrafficClass.poisson(alpha)])
    nearly = solve_convolution(
        dims, [TrafficClass(alpha=alpha, beta=1e-10)]
    )
    assert nearly.blocking(0) == pytest.approx(
        poisson.blocking(0), rel=1e-6, abs=1e-9
    )
    assert nearly.concurrency(0) == pytest.approx(
        poisson.concurrency(0), rel=1e-6
    )


@given(
    n=st.integers(min_value=2, max_value=6),
    alpha=st.floats(min_value=0.05, max_value=0.4),
    beta=st.floats(min_value=0.05, max_value=0.4),
)
def test_peaky_blocks_more_than_poisson_at_same_alpha(n, alpha, beta):
    """Adding positive state-dependence to arrivals always adds load,
    so blocking cannot decrease (Figure 2's direction)."""
    dims = SwitchDimensions.square(n)
    poisson = solve_convolution(dims, [TrafficClass.poisson(alpha)])
    peaky = solve_convolution(dims, [TrafficClass(alpha=alpha, beta=beta)])
    assert peaky.blocking(0) >= poisson.blocking(0) - 1e-13


@given(dims=dims_strategy, classes=classes_strategy)
def test_sub_dimension_query_matches_direct_solve(dims, classes):
    assume(dims.n1 >= 2 and dims.n2 >= 2)
    solution = solve_convolution(dims, classes)
    sub = SwitchDimensions(dims.n1 - 1, dims.n2 - 1)
    direct = solve_convolution(sub, classes)
    for r in range(len(classes)):
        assert solution.non_blocking(r, at=sub) == pytest.approx(
            direct.non_blocking(r), rel=1e-9, abs=1e-13
        )


@given(dims=dims_strategy, classes=classes_strategy)
def test_flow_balance_identity(dims, classes):
    """mu_r E_r equals accepted-request rate for every class."""
    from repro.core.state import permutation

    dist = solve_brute_force(dims, classes)
    for r, cls in enumerate(classes):
        full = permutation(dims.n1, cls.a) * permutation(dims.n2, cls.a)
        if full == 0:
            continue
        e = dist.concurrency(r)
        offered = sum(
            p * cls.rate(s[r]) * full
            for s, p in zip(dist.states, dist.probabilities)
        )
        accepted = offered * dist.call_acceptance(r)
        assert cls.mu * e == pytest.approx(accepted, rel=1e-8, abs=1e-12)
