"""Tests for the raw CTMC substrate (no product-form assumptions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.productform import solve_brute_force
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.ctmc import (
    IndexedStateSpace,
    build_generator,
    solve_ctmc,
    time_to_stationarity,
    transient_distribution,
    transition_rates,
)
from repro.exceptions import ConfigurationError


class TestStateSpace:
    def test_index_is_bijective(self, small_dims, mixed_classes):
        space = IndexedStateSpace.build(small_dims, mixed_classes)
        assert len(space.index) == len(space.states)
        for state, i in space.index.items():
            assert space.states[i] == state

    def test_requires_classes(self, small_dims):
        with pytest.raises(ConfigurationError):
            IndexedStateSpace.build(small_dims, [])

    def test_occupancy(self, small_dims, mixed_classes):
        space = IndexedStateSpace.build(small_dims, mixed_classes)
        assert space.occupancy((1, 1, 1)) == 1 + 2 + 1


class TestGenerator:
    def test_rows_sum_to_zero(self, small_dims, mixed_classes):
        space = IndexedStateSpace.build(small_dims, mixed_classes)
        gen = build_generator(space)
        rows = np.asarray(gen.sum(axis=1)).ravel()
        assert np.allclose(rows, 0.0, atol=1e-12)

    def test_off_diagonal_non_negative(self, small_dims, mixed_classes):
        space = IndexedStateSpace.build(small_dims, mixed_classes)
        gen = build_generator(space).toarray()
        off = gen - np.diag(np.diag(gen))
        assert np.all(off >= 0.0)

    def test_transition_rates_from_empty_state(self):
        dims = SwitchDimensions(3, 4)
        classes = [TrafficClass.poisson(0.5), TrafficClass.poisson(0.2, a=2)]
        space = IndexedStateSpace.build(dims, classes)
        rates = dict(transition_rates(space, (0, 0)))
        # a=1: lambda * P(3,1) P(4,1) = 0.5 * 12
        assert rates[(1, 0)] == pytest.approx(6.0)
        # a=2: lambda * P(3,2) P(4,2) = 0.2 * 6 * 12
        assert rates[(0, 1)] == pytest.approx(14.4)

    def test_departure_rates_linear_in_k(self):
        dims = SwitchDimensions(4, 4)
        classes = [TrafficClass.poisson(0.5, mu=2.0)]
        space = IndexedStateSpace.build(dims, classes)
        rates = dict(transition_rates(space, (3,)))
        assert rates[(2,)] == pytest.approx(6.0)  # k mu = 3 * 2

    def test_blocking_states_have_no_up_transitions(self):
        dims = SwitchDimensions(2, 2)
        classes = [TrafficClass.poisson(0.5)]
        space = IndexedStateSpace.build(dims, classes)
        targets = [t for t, _ in transition_rates(space, (2,))]
        assert targets == [(1,)]

    def test_bernoulli_rate_exhausts_at_sources(self):
        dims = SwitchDimensions(5, 5)
        classes = [TrafficClass.bernoulli(2, 0.3)]
        space = IndexedStateSpace.build(dims, classes)
        targets = [t for t, _ in transition_rates(space, (2,))]
        assert (3,) not in targets  # no sources left


class TestStationarySolution:
    @pytest.mark.parametrize("method", ["direct", "power"])
    def test_matches_product_form(self, small_dims, mixed_classes, method):
        ctmc = solve_ctmc(small_dims, mixed_classes, method=method)
        reference = solve_brute_force(small_dims, mixed_classes)
        tol = 1e-12 if method == "direct" else 1e-8
        for p, q in zip(ctmc.probabilities, reference.probabilities):
            assert p == pytest.approx(q, abs=tol)

    def test_log_g_reconstruction(self, small_dims, mixed_classes):
        ctmc = solve_ctmc(small_dims, mixed_classes)
        reference = solve_brute_force(small_dims, mixed_classes)
        assert ctmc.log_g == pytest.approx(reference.log_g, rel=1e-10)

    def test_unknown_method_rejected(self, small_dims, mixed_classes):
        with pytest.raises(ConfigurationError):
            solve_ctmc(small_dims, mixed_classes, method="divination")

    def test_measures_available_on_result(self, small_dims, mixed_classes):
        ctmc = solve_ctmc(small_dims, mixed_classes)
        assert 0.0 <= ctmc.non_blocking_probability(0) <= 1.0
        assert ctmc.check_normalized()


class TestTransient:
    def test_t_zero_is_initial_state(self):
        dims = SwitchDimensions(2, 2)
        classes = [TrafficClass.poisson(0.5)]
        dist = transient_distribution(dims, classes, t=0.0)
        assert dist[(0,)] == pytest.approx(1.0)

    def test_distribution_normalized_at_all_times(self):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.4), TrafficClass(alpha=0.1, beta=0.2)]
        for t in (0.1, 1.0, 5.0):
            dist = transient_distribution(dims, classes, t=t)
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_converges_to_stationary(self):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.4)]
        late = transient_distribution(dims, classes, t=80.0)
        stationary = solve_brute_force(dims, classes)
        for state, p in zip(stationary.states, stationary.probabilities):
            assert late[state] == pytest.approx(p, abs=1e-9)

    def test_monotone_departure_from_initial(self):
        dims = SwitchDimensions(2, 2)
        classes = [TrafficClass.poisson(0.8)]
        early = transient_distribution(dims, classes, t=0.05)
        later = transient_distribution(dims, classes, t=2.0)
        assert early[(0,)] > later[(0,)]

    def test_custom_initial_state(self):
        dims = SwitchDimensions(2, 2)
        classes = [TrafficClass.poisson(0.5)]
        dist = transient_distribution(dims, classes, t=0.0, initial=(2,))
        assert dist[(2,)] == pytest.approx(1.0)

    def test_infeasible_initial_rejected(self):
        dims = SwitchDimensions(2, 2)
        classes = [TrafficClass.poisson(0.5)]
        with pytest.raises(ConfigurationError):
            transient_distribution(dims, classes, t=1.0, initial=(5,))

    def test_negative_time_rejected(self):
        dims = SwitchDimensions(2, 2)
        with pytest.raises(ConfigurationError):
            transient_distribution(
                dims, [TrafficClass.poisson(0.5)], t=-1.0
            )

    def test_time_to_stationarity_positive_and_finite(self):
        dims = SwitchDimensions(2, 2)
        classes = [TrafficClass.poisson(0.5)]
        t = time_to_stationarity(dims, classes, epsilon=1e-4, horizon=100.0)
        assert 0.0 < t < 100.0
