"""Property tests: the engine's execution paths are byte-identical.

Whatever path a request takes through :class:`BatchSolver` — a fresh
solve, a memory or disk cache hit, a shared Q-grid read, or a process
pool worker — the returned measures must be the *same floats*, bit for
bit.  Hypothesis drives randomized traffic mixes and switch sizes
through each pair of paths and compares ``float.hex()`` renderings.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import assume, given
from hypothesis import strategies as st

from tests.conftest import POOL_SETTINGS

from repro.api import SolveRequest, SolveResult
from repro.core.traffic import TrafficClass
from repro.engine import BatchSolver, EngineConfig
from repro.exceptions import CrossbarError


def result_bits(result: SolveResult) -> tuple:
    """Every float of a result rendered exactly (hex, lossless)."""
    return (
        tuple(b.hex() for b in result.blocking),
        tuple(e.hex() for e in result.concurrency),
        tuple(a.hex() for a in result.acceptance),
        tuple(t.hex() for t in result.throughput),
        result.revenue.hex(),
        result.mean_occupancy.hex(),
        result.utilization.hex(),
    )


rates = st.floats(
    min_value=1e-4, max_value=0.2, allow_nan=False, allow_infinity=False
)

traffic_classes = st.builds(
    TrafficClass,
    alpha=rates,
    beta=st.floats(
        min_value=0.0, max_value=0.4, allow_nan=False, allow_infinity=False
    ),
    mu=st.floats(
        min_value=0.5, max_value=2.0, allow_nan=False, allow_infinity=False
    ),
    a=st.integers(min_value=1, max_value=2),
)

mixes = st.lists(traffic_classes, min_size=1, max_size=3)

sizes = st.lists(
    st.integers(min_value=2, max_value=8), min_size=1, max_size=5, unique=True
)


@given(n=st.integers(min_value=2, max_value=8), classes=mixes)
def test_cached_equals_uncached(n, classes):
    request = SolveRequest.square(n, tuple(classes))
    engine = BatchSolver(EngineConfig())
    fresh = engine.solve(request)
    cached = engine.solve(request)
    assert cached.from_cache
    assert result_bits(cached) == result_bits(fresh)


@given(n=st.integers(min_value=2, max_value=8), classes=mixes)
def test_disk_cache_round_trip_is_lossless(n, classes, tmp_path_factory):
    request = SolveRequest.square(n, tuple(classes))
    cache_dir = tmp_path_factory.mktemp("engine-cache")
    engine = BatchSolver(EngineConfig(disk_cache=cache_dir))
    fresh = engine.solve(request)
    engine.clear()  # force the disk path
    from_disk = engine.solve(request)
    assert from_disk.from_cache
    assert engine.stats.disk_hits == 1
    assert result_bits(from_disk) == result_bits(fresh)


@given(ns=sizes, classes=mixes)
def test_grid_sharing_equals_point_solves(ns, classes):
    requests = [SolveRequest.square(n, tuple(classes)) for n in ns]
    shared = BatchSolver(EngineConfig()).evaluate_many(
        requests, parallel=False
    )
    point = [BatchSolver(EngineConfig()).solve(r) for r in requests]
    assert [result_bits(s) for s in shared] == [result_bits(p) for p in point]


@given(ns=sizes, classes=mixes)
@POOL_SETTINGS
def test_parallel_equals_serial(ns, classes):
    # Unscaled-float requests cannot share a grid, so every miss goes
    # through the pool — the strongest exercise of worker-vs-inline
    # identity.
    requests = [
        SolveRequest.square(n, tuple(classes), "convolution-float")
        for n in ns
    ]
    try:
        serial = BatchSolver(EngineConfig()).evaluate_many(
            requests, parallel=False
        )
    except CrossbarError:
        # The unscaled recurrence legitimately over/underflows on some
        # generated mixes; identity is only meaningful when solvable.
        assume(False)
    parallel = BatchSolver(EngineConfig(processes=2)).evaluate_many(
        requests, parallel=True
    )
    assert [result_bits(s) for s in serial] == [
        result_bits(p) for p in parallel
    ]
