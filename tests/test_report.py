"""Tests for the one-shot reproduction report generator."""

from __future__ import annotations

import json

import pytest

from repro.experiments import ReproductionCheck, generate_report


class TestReproductionCheck:
    def test_render_pass(self):
        check = ReproductionCheck("fig", "claim holds", True)
        assert check.render() == "[PASS] fig: claim holds"

    def test_render_fail(self):
        check = ReproductionCheck("fig", "claim holds", False)
        assert "[FAIL]" in check.render()


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("report")
    checks = generate_report(out)
    return out, checks


class TestGenerateReport:
    def test_all_criteria_pass(self, report):
        _, checks = report
        failing = [c.render() for c in checks if not c.passed]
        assert not failing, failing

    def test_artifacts_written(self, report):
        out, _ = report
        expected = {
            "figure1.txt", "figure1.json", "figure2.txt", "figure3.txt",
            "figure4.txt", "table1.txt", "table2_set0.txt",
            "table2_set1.json", "summary.txt",
        }
        names = {p.name for p in out.iterdir()}
        assert expected <= names

    def test_figure_json_structure(self, report):
        out, _ = report
        record = json.loads((out / "figure1.json").read_text())
        assert record["x_label"] == "N"
        assert "poisson" in record["curves"]
        assert len(record["curves"]["poisson"]) == len(record["x"])

    def test_summary_counts(self, report):
        out, checks = report
        summary = (out / "summary.txt").read_text()
        assert f"{len(checks)}/{len(checks)}" in summary

    def test_table2_json_has_paper_columns(self, report):
        out, _ = report
        rows = json.loads((out / "table2_set0.json").read_text())
        assert rows[0]["paper_blocking"] is not None
