"""Tests for the exact hot-spot chain (companion model, ref. [28])."""

from __future__ import annotations

import pytest

from repro.core.convolution import solve_convolution
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError
from repro.extensions.hotspot_analysis import solve_hot_spot
from repro.sim import run_hot_spot


class TestUniformLimit:
    """factor = 1 must collapse to the paper's uniform model."""

    @pytest.mark.parametrize("n,rho", [(4, 0.2), (8, 0.05), (6, 0.5)])
    def test_blocking_matches_product_form(self, n, rho):
        dims = SwitchDimensions.square(n)
        cls = TrafficClass.poisson(rho)
        uniform = solve_convolution(dims, [cls])
        hot = solve_hot_spot(dims, cls, factor=1.0)
        assert hot.blocking() == pytest.approx(
            uniform.blocking(0), rel=1e-10
        )

    def test_mean_connections_matches(self):
        dims = SwitchDimensions.square(5)
        cls = TrafficClass.poisson(0.3)
        uniform = solve_convolution(dims, [cls])
        hot = solve_hot_spot(dims, cls, factor=1.0)
        assert hot.mean_connections() == pytest.approx(
            uniform.concurrency(0), rel=1e-10
        )

    def test_hot_and_cold_blocking_equal_at_factor_one(self):
        dims = SwitchDimensions.square(5)
        cls = TrafficClass.poisson(0.3)
        hot = solve_hot_spot(dims, cls, factor=1.0)
        assert hot.hot_request_blocking() == pytest.approx(
            hot.cold_request_blocking(), rel=1e-9
        )

    def test_rectangular_uniform_limit(self):
        dims = SwitchDimensions(4, 7)
        cls = TrafficClass.poisson(0.15)
        uniform = solve_convolution(dims, [cls])
        hot = solve_hot_spot(dims, cls, factor=1.0)
        assert hot.blocking() == pytest.approx(
            uniform.blocking(0), rel=1e-10
        )


class TestSkewEffects:
    def test_blocking_monotone_in_factor(self):
        dims = SwitchDimensions.square(6)
        cls = TrafficClass.poisson(0.1)
        blockings = [
            solve_hot_spot(dims, cls, factor=f).blocking()
            for f in (1.0, 2.0, 4.0, 8.0, 16.0)
        ]
        assert all(b > a - 1e-12 for a, b in zip(blockings, blockings[1:]))

    def test_hot_requests_blocked_more_than_cold(self):
        dims = SwitchDimensions.square(6)
        cls = TrafficClass.poisson(0.1)
        solution = solve_hot_spot(dims, cls, factor=6.0)
        assert (
            solution.hot_request_blocking()
            > solution.cold_request_blocking()
        )

    def test_hot_output_hotter_than_cold(self):
        dims = SwitchDimensions.square(6)
        cls = TrafficClass.poisson(0.1)
        solution = solve_hot_spot(dims, cls, factor=4.0)
        assert (
            solution.hot_output_utilization()
            > solution.cold_output_utilization()
        )

    def test_distribution_normalized(self):
        dims = SwitchDimensions.square(7)
        cls = TrafficClass.poisson(0.2)
        solution = solve_hot_spot(dims, cls, factor=3.0)
        assert sum(solution.probabilities) == pytest.approx(1.0)

    def test_probability_lookup(self):
        dims = SwitchDimensions.square(3)
        cls = TrafficClass.poisson(0.2)
        solution = solve_hot_spot(dims, cls, factor=2.0)
        assert solution.probability(0, 0) > 0.0
        assert solution.probability(0, 1) == 0.0  # infeasible


@pytest.mark.slow
class TestAgainstSimulation:
    @pytest.mark.parametrize("factor", [1.0, 4.0])
    def test_acceptance_matches_simulator(self, factor):
        dims = SwitchDimensions.square(5)
        classes = [TrafficClass.poisson(0.15, name="p")]
        analysis = solve_hot_spot(dims, classes[0], factor=factor)
        summary = run_hot_spot(
            dims, classes, factor=factor, horizon=4000.0, warmup=400.0,
            replications=4, seed=19,
        )
        sim_acc = summary.classes[0].acceptance.estimate
        assert sim_acc == pytest.approx(
            analysis.call_acceptance(), rel=0.04
        )

    def test_concurrency_matches_simulator(self):
        dims = SwitchDimensions.square(5)
        classes = [TrafficClass.poisson(0.15, name="p")]
        analysis = solve_hot_spot(dims, classes[0], factor=5.0)
        summary = run_hot_spot(
            dims, classes, factor=5.0, horizon=4000.0, warmup=400.0,
            replications=4, seed=23,
        )
        assert summary.classes[0].concurrency.estimate == pytest.approx(
            analysis.mean_connections(), rel=0.05
        )


class TestValidation:
    def test_rejects_multirate(self):
        with pytest.raises(ConfigurationError):
            solve_hot_spot(
                SwitchDimensions(4, 4), TrafficClass.poisson(0.1, a=2), 2.0
            )

    def test_rejects_bursty(self):
        with pytest.raises(ConfigurationError):
            solve_hot_spot(
                SwitchDimensions(4, 4),
                TrafficClass(alpha=0.1, beta=0.2),
                2.0,
            )

    def test_rejects_small_factor(self):
        with pytest.raises(ConfigurationError):
            solve_hot_spot(
                SwitchDimensions(4, 4), TrafficClass.poisson(0.1), 0.5
            )
