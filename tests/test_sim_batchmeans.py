"""Tests for batch-means output analysis and simulator invariants."""

from __future__ import annotations

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # long simulation runs for batch-means statistics

from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import SimulationError
from repro.sim import AsynchronousCrossbarSimulator, BatchMeans


class TestBatchMeans:
    def test_known_batches(self):
        bm = BatchMeans(batches=2)
        for v in (1.0, 3.0, 5.0, 7.0):
            bm.add(v)
        assert bm.batch_means() == [2.0, 6.0]

    def test_remainder_dropped(self):
        bm = BatchMeans(batches=2)
        for v in (1.0, 3.0, 5.0, 7.0, 100.0):
            bm.add(v)
        assert bm.batch_means() == [2.0, 6.0]

    def test_interval_covers_iid_mean(self):
        rng = np.random.default_rng(5)
        hits = 0
        for _ in range(100):
            bm = BatchMeans(batches=10)
            for v in rng.normal(4.0, 1.0, size=400):
                bm.add(float(v))
            hits += bm.interval(0.95).contains(4.0)
        assert hits >= 85

    def test_lag1_autocorrelation_near_zero_for_iid(self):
        rng = np.random.default_rng(9)
        bm = BatchMeans(batches=30)
        for v in rng.normal(0.0, 1.0, size=3000):
            bm.add(float(v))
        assert abs(bm.lag1_autocorrelation()) < 0.4

    def test_lag1_autocorrelation_detects_trend(self):
        bm = BatchMeans(batches=10)
        for i in range(1000):
            bm.add(float(i))  # strong trend -> correlated batches
        assert bm.lag1_autocorrelation() > 0.5

    def test_too_few_batches_rejected(self):
        with pytest.raises(SimulationError):
            BatchMeans(batches=1)

    def test_too_few_observations_rejected(self):
        bm = BatchMeans(batches=4)
        bm.add(1.0)
        with pytest.raises(SimulationError):
            bm.batch_means()

    def test_count(self):
        bm = BatchMeans(batches=2)
        bm.add(1.0)
        bm.add(2.0)
        assert bm.count == 2


class TestSimulatorInvariants:
    def test_invariants_hold_through_a_run(self):
        """Every event leaves ports, concurrencies and the connection
        table mutually consistent (O(N)-per-event validation on)."""
        dims = SwitchDimensions(4, 5)
        classes = [
            TrafficClass.poisson(0.3, name="p"),
            TrafficClass(alpha=0.1, beta=0.3, a=2, name="wide"),
        ]
        sim = AsynchronousCrossbarSimulator(dims, classes, seed=13)
        record = sim.run(horizon=500.0, check_invariants=True)
        assert record.events > 100

    def test_invariants_hold_with_hot_spot(self):
        dims = SwitchDimensions(4, 4)
        classes = [TrafficClass.poisson(0.4, name="p")]
        sim = AsynchronousCrossbarSimulator(
            dims, classes, seed=3,
            output_weights=[0.7, 0.1, 0.1, 0.1],
        )
        record = sim.run(horizon=400.0, check_invariants=True)
        assert record.events > 100
