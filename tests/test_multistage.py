"""Tests for the multistage (tandem) network extension."""

from __future__ import annotations

import pytest

from repro.core.convolution import solve_convolution
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError
from repro.multistage import (
    TandemNetwork,
    analyze_tandem,
    simulate_tandem,
)


class TestTopology:
    def test_uniform_builder(self):
        net = TandemNetwork.square(3, 4)
        assert len(net) == 3
        assert all(d == SwitchDimensions(4, 4) for d in net.stages)

    def test_requires_stages(self):
        with pytest.raises(ConfigurationError):
            TandemNetwork(())

    def test_bad_stage_count(self):
        with pytest.raises(ConfigurationError):
            TandemNetwork.square(0, 4)

    def test_bottleneck_capacity(self):
        net = TandemNetwork(
            (SwitchDimensions(8, 8), SwitchDimensions(4, 6))
        )
        assert net.bottleneck_capacity == 4

    def test_validate_classes(self):
        net = TandemNetwork.square(2, 3)
        with pytest.raises(ConfigurationError):
            net.validate_classes([4])


class TestReducedLoadAnalysis:
    def test_single_stage_is_exact(self):
        dims = SwitchDimensions(5, 5)
        classes = [TrafficClass.poisson(0.1), TrafficClass(alpha=0.02, beta=0.1)]
        net = TandemNetwork.uniform(1, dims)
        result = analyze_tandem(net, classes)
        single = solve_convolution(dims, classes)
        for r in range(2):
            assert result.end_to_end_blocking(r) == pytest.approx(
                single.blocking(r), rel=1e-10
            )

    def test_identical_stages_get_identical_blocking(self):
        net = TandemNetwork.square(3, 4)
        classes = [TrafficClass.poisson(0.05)]
        result = analyze_tandem(net, classes)
        first = result.stage_blocking[0][0]
        for stage in result.stage_blocking[1:]:
            assert stage[0] == pytest.approx(first, rel=1e-9)

    def test_blocking_increases_with_stage_count(self):
        classes = [TrafficClass.poisson(0.05)]
        blockings = [
            analyze_tandem(
                TandemNetwork.square(s, 4), classes
            ).end_to_end_blocking(0)
            for s in (1, 2, 4)
        ]
        assert blockings[0] < blockings[1] < blockings[2]

    def test_worst_stage_identified(self):
        # At a fixed *per-pair* rate the larger stage carries ~N^2
        # request streams against ~N ports, so it is the congested one.
        net = TandemNetwork(
            (SwitchDimensions(8, 8), SwitchDimensions(3, 3))
        )
        classes = [TrafficClass.poisson(0.05)]
        result = analyze_tandem(net, classes)
        assert result.worst_stage(0) == 0
        assert result.stage_blocking[0][0] > result.stage_blocking[1][0]

    def test_damping_reaches_same_fixed_point(self):
        net = TandemNetwork.square(3, 4)
        classes = [TrafficClass.poisson(0.08)]
        plain = analyze_tandem(net, classes)
        damped = analyze_tandem(net, classes, damping=0.5)
        assert plain.end_to_end_blocking(0) == pytest.approx(
            damped.end_to_end_blocking(0), rel=1e-8
        )

    def test_acceptance_complements_blocking(self):
        net = TandemNetwork.square(2, 4)
        classes = [TrafficClass.poisson(0.05)]
        result = analyze_tandem(net, classes)
        assert result.end_to_end_acceptance(0) == pytest.approx(
            1.0 - result.end_to_end_blocking(0)
        )


class TestAgainstSimulation:
    def test_low_load_agreement(self):
        """At light load the independence approximation is tight."""
        net = TandemNetwork.square(2, 4)
        classes = [TrafficClass.poisson(0.01, name="p")]
        analysis = analyze_tandem(net, classes)
        sim = simulate_tandem(
            net, classes, horizon=8000.0, warmup=500.0,
            replications=4, seed=1,
        )
        assert sim.acceptance[0].estimate == pytest.approx(
            analysis.end_to_end_acceptance(0), rel=0.03
        )

    def test_reduced_load_is_pessimistic_at_high_load(self):
        """With simultaneous holding, stage occupancies are perfectly
        correlated; assuming independence overstates blocking."""
        net = TandemNetwork.square(3, 4)
        classes = [TrafficClass.poisson(0.04, name="p")]
        analysis = analyze_tandem(net, classes)
        sim = simulate_tandem(
            net, classes, horizon=5000.0, warmup=500.0,
            replications=4, seed=2,
        )
        assert analysis.end_to_end_acceptance(0) < sim.acceptance[0].estimate

    def test_simulator_rejects_oversized_class(self):
        net = TandemNetwork.square(2, 2)
        with pytest.raises(ConfigurationError):
            simulate_tandem(
                net, [TrafficClass.poisson(0.1, a=3)], horizon=10.0
            )
