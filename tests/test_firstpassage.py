"""Tests for first-passage analysis and provisioning economics."""

from __future__ import annotations

import pytest

from repro.core.revenue import port_marginal_revenue
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.ctmc import mean_time_to_blocking
from repro.exceptions import ConfigurationError
from repro.sim import run_until_precision


class TestMeanTimeToBlocking:
    def test_single_server_closed_form(self):
        """1x1 switch: blocking set is {k=1}; expected hitting time from
        empty is one inter-arrival time, 1/(lambda N1 N2) = 1/alpha."""
        alpha = 0.4
        dims = SwitchDimensions(1, 1)
        value = mean_time_to_blocking(dims, [TrafficClass.poisson(alpha)])
        assert value == pytest.approx(1.0 / alpha, rel=1e-9)

    def test_decreases_with_load(self):
        dims = SwitchDimensions(3, 3)
        light = mean_time_to_blocking(dims, [TrafficClass.poisson(0.1)])
        heavy = mean_time_to_blocking(dims, [TrafficClass.poisson(0.5)])
        assert heavy < light

    def test_increases_with_size_at_fixed_total_load(self):
        def classes_for(n):
            return [TrafficClass.poisson(0.5 / n**2)]

        small = mean_time_to_blocking(
            SwitchDimensions.square(2), classes_for(2)
        )
        big = mean_time_to_blocking(
            SwitchDimensions.square(4), classes_for(4)
        )
        assert big > small

    def test_infinite_when_sources_cannot_fill_fabric(self):
        dims = SwitchDimensions(5, 5)
        classes = [TrafficClass.bernoulli(2, 0.3)]
        assert mean_time_to_blocking(dims, classes) == float("inf")

    def test_zero_when_starting_blocked(self):
        dims = SwitchDimensions(2, 2)
        classes = [TrafficClass.poisson(0.3)]
        assert mean_time_to_blocking(dims, classes, initial=(2,)) == 0.0

    def test_multirate_threshold(self):
        """An a=2 class is blocked earlier (k.A > cap - 2)."""
        dims = SwitchDimensions(4, 4)
        classes = [
            TrafficClass.poisson(0.2),
            TrafficClass.poisson(0.05, a=2),
        ]
        narrow = mean_time_to_blocking(dims, classes, r=0)
        wide = mean_time_to_blocking(dims, classes, r=1)
        assert wide < narrow

    def test_validation(self):
        dims = SwitchDimensions(2, 2)
        classes = [TrafficClass.poisson(0.3)]
        with pytest.raises(ConfigurationError):
            mean_time_to_blocking(dims, [], r=0)
        with pytest.raises(ConfigurationError):
            mean_time_to_blocking(dims, classes, r=5)
        with pytest.raises(ConfigurationError):
            mean_time_to_blocking(dims, classes, initial=(9,))


class TestPortMarginalRevenue:
    def test_symmetric_switch_symmetric_gains(self):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.3)]
        econ = port_marginal_revenue(dims, classes)
        assert econ["add_input"] == pytest.approx(econ["add_output"])
        assert econ["add_both"] > econ["add_input"]

    def test_bottleneck_side_is_worth_more(self):
        """On a rectangular switch the scarce side dominates."""
        dims = SwitchDimensions(2, 8)
        classes = [TrafficClass.poisson(0.2)]
        econ = port_marginal_revenue(dims, classes)
        assert econ["add_input"] > econ["add_output"]

    def test_gains_nonnegative(self):
        dims = SwitchDimensions(3, 4)
        classes = [
            TrafficClass.poisson(0.2, weight=2.0),
            TrafficClass(alpha=0.05, beta=0.2, weight=0.5),
        ]
        econ = port_marginal_revenue(dims, classes)
        for key in ("add_input", "add_output", "add_both"):
            assert econ[key] >= -1e-12

    def test_consistent_with_direct_solves(self):
        from repro.core.convolution import solve_convolution

        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.3)]
        econ = port_marginal_revenue(dims, classes)
        direct = (
            solve_convolution(SwitchDimensions(4, 3), classes).revenue()
            - solve_convolution(dims, classes).revenue()
        )
        assert econ["add_input"] == pytest.approx(direct, rel=1e-12)


class TestRunUntilPrecision:
    def test_meets_target(self):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.3, name="p")]
        summary = run_until_precision(
            dims, classes, target_half_width=0.03,
            horizon=600.0, warmup=60.0, seed=3,
        )
        assert summary.classes[0].acceptance.half_width <= 0.03
        assert summary.replications >= 4

    def test_tight_target_needs_more_replications(self):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.3, name="p")]
        loose = run_until_precision(
            dims, classes, target_half_width=0.05,
            horizon=400.0, warmup=40.0, seed=9,
        )
        tight = run_until_precision(
            dims, classes, target_half_width=0.01,
            horizon=400.0, warmup=40.0, seed=9,
        )
        assert tight.replications >= loose.replications

    def test_budget_exhaustion_raises(self):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.3)]
        with pytest.raises(ConfigurationError, match="half-width"):
            run_until_precision(
                dims, classes, target_half_width=1e-7,
                horizon=50.0, max_replications=5, seed=1,
            )

    def test_validation(self):
        dims = SwitchDimensions(2, 2)
        classes = [TrafficClass.poisson(0.1)]
        with pytest.raises(ConfigurationError):
            run_until_precision(
                dims, classes, target_half_width=0.0, horizon=10.0
            )
        with pytest.raises(ConfigurationError):
            run_until_precision(
                dims, classes, target_half_width=0.1, horizon=10.0,
                measure="latency",
            )
        with pytest.raises(ConfigurationError):
            run_until_precision(
                dims, classes, target_half_width=0.1, horizon=10.0,
                min_replications=1,
            )
