"""Tests for the admission-control (trunk reservation) extension."""

from __future__ import annotations

import pytest

from repro.core.productform import solve_brute_force
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError
from repro.extensions import (
    OccupancyThresholdPolicy,
    policy_call_acceptance,
    solve_with_admission,
    sweep_threshold,
)
from repro.sim import run_replications

DIMS = SwitchDimensions(4, 4)
CLASSES = (
    TrafficClass.poisson(0.25, weight=5.0, name="gold"),
    TrafficClass.poisson(0.25, weight=0.1, name="bronze"),
)


class TestPolicy:
    def test_unrestricted_factory(self):
        policy = OccupancyThresholdPolicy.unrestricted(DIMS, 2)
        assert policy.thresholds == (4, 4)

    def test_reserve_factory(self):
        policy = OccupancyThresholdPolicy.reserve(
            DIMS, 2, restricted=1, headroom=3
        )
        assert policy.thresholds == (4, 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OccupancyThresholdPolicy((1,)).validate(DIMS, 2)
        with pytest.raises(ConfigurationError):
            OccupancyThresholdPolicy((5, 2)).validate(DIMS, 2)
        with pytest.raises(ConfigurationError):
            OccupancyThresholdPolicy.reserve(DIMS, 2, 0, headroom=-1)


class TestSolver:
    def test_unrestricted_matches_product_form(self):
        policy = OccupancyThresholdPolicy.unrestricted(DIMS, 2)
        controlled = solve_with_admission(DIMS, CLASSES, policy)
        plain = solve_brute_force(DIMS, CLASSES)
        for state, p in zip(plain.states, plain.probabilities):
            assert controlled.probability(state) == pytest.approx(
                p, abs=1e-12
            )

    def test_states_above_threshold_unreachable(self):
        policy = OccupancyThresholdPolicy((4, 2))
        controlled = solve_with_admission(DIMS, CLASSES, policy)
        for state in controlled.states:
            # bronze (class 1) could only have been admitted while
            # occupancy stayed <= 2, so k_bronze <= 2 in every state.
            assert state[1] <= 2

    def test_policy_breaks_reversibility(self):
        """Thresholded admission destroys the product form: detailed
        balance (w.r.t. the *unrestricted* rates) no longer holds."""
        policy = OccupancyThresholdPolicy((4, 2))
        controlled = solve_with_admission(DIMS, CLASSES, policy)
        assert controlled.detailed_balance_residual() > 1e-6

    def test_reserving_protects_gold(self):
        unrestricted = solve_with_admission(
            DIMS, CLASSES, OccupancyThresholdPolicy.unrestricted(DIMS, 2)
        )
        reserved = solve_with_admission(
            DIMS, CLASSES,
            OccupancyThresholdPolicy.reserve(DIMS, 2, restricted=1,
                                             headroom=2),
        )
        assert reserved.concurrency(0) > unrestricted.concurrency(0)
        assert reserved.concurrency(1) < unrestricted.concurrency(1)

    def test_reservation_can_raise_revenue(self):
        """The fix for the paper's Table 2 finding: restricting cheap
        traffic raises W when the weight asymmetry is large."""
        records = sweep_threshold(DIMS, CLASSES, restricted=1)
        unrestricted = records[-1]["revenue"]
        best = max(r["revenue"] for r in records)
        assert best > unrestricted

    def test_zero_threshold_shuts_class_out(self):
        policy = OccupancyThresholdPolicy((4, 0))
        controlled = solve_with_admission(DIMS, CLASSES, policy)
        assert controlled.concurrency(1) == pytest.approx(0.0, abs=1e-12)
        # ... and the other class behaves as if alone
        alone = solve_brute_force(DIMS, CLASSES[:1])
        assert controlled.concurrency(0) == pytest.approx(
            alone.concurrency(0), rel=1e-9
        )

    def test_policy_acceptance_below_one_when_binding(self):
        policy = OccupancyThresholdPolicy((4, 1))
        controlled = solve_with_admission(DIMS, CLASSES, policy)
        acc = policy_call_acceptance(controlled, policy, 1)
        assert 0.0 < acc < controlled.non_blocking_probability(1)

    def test_empty_classes_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_with_admission(
                DIMS, (), OccupancyThresholdPolicy(())
            )


@pytest.mark.slow
class TestAgainstSimulation:
    def test_simulator_matches_ctmc_under_policy(self):
        policy = OccupancyThresholdPolicy((4, 2))
        controlled = solve_with_admission(DIMS, CLASSES, policy)
        summary = run_replications(
            DIMS, list(CLASSES), horizon=4000.0, warmup=400.0,
            replications=5, seed=77,
            admission_thresholds=policy.thresholds,
        )
        for r in range(2):
            sim_acc = summary.classes[r].acceptance.estimate
            ana_acc = policy_call_acceptance(controlled, policy, r)
            assert sim_acc == pytest.approx(ana_acc, rel=0.05)
            sim_e = summary.classes[r].concurrency.estimate
            assert sim_e == pytest.approx(
                controlled.concurrency(r), rel=0.08
            )

    def test_simulator_threshold_validation(self):
        from repro.sim import AsynchronousCrossbarSimulator

        with pytest.raises(ConfigurationError):
            AsynchronousCrossbarSimulator(
                DIMS, CLASSES, admission_thresholds=[4]
            )
        with pytest.raises(ConfigurationError):
            AsynchronousCrossbarSimulator(
                DIMS, CLASSES, admission_thresholds=[4, 9]
            )
