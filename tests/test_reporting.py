"""Tests for text tables and figure-series containers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.reporting import (
    Curve,
    FigureSeries,
    format_table,
    format_value,
    render_ascii_chart,
)


class TestFormatValue:
    def test_float_uses_general_format(self):
        assert format_value(0.123456789, precision=4) == "0.1235"

    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_none_and_bool(self):
        assert format_value(None) == "None"
        assert format_value(True) == "True"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["n", "x"], [[1, 0.5], [10, 0.25]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # equal widths

    def test_title_included(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_header_rule_present(self):
        text = format_table(["abc"], [[1]])
        assert "---" in text.splitlines()[1]


class TestFigureSeries:
    def make(self) -> FigureSeries:
        return FigureSeries(
            title="T", x_label="N", x_values=(1.0, 2.0), y_label="B"
        )

    def test_add_and_lookup(self):
        fig = self.make()
        fig.add("c1", [0.1, 0.2])
        assert fig.curve("c1").values == (0.1, 0.2)

    def test_add_rejects_length_mismatch(self):
        fig = self.make()
        with pytest.raises(ConfigurationError):
            fig.add("bad", [0.1])

    def test_missing_curve_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make().curve("nope")

    def test_empty_curve_rejected(self):
        with pytest.raises(ConfigurationError):
            Curve(label="x", values=())

    def test_to_rows(self):
        fig = self.make()
        fig.add("c1", [0.1, 0.2])
        fig.add("c2", [0.3, 0.4])
        assert fig.to_rows() == [[1.0, 0.1, 0.3], [2.0, 0.2, 0.4]]

    def test_render_contains_labels(self):
        fig = self.make()
        fig.add("c1", [0.1, 0.2])
        text = fig.render()
        assert "c1" in text and "N" in text and "T" in text


class TestAsciiChart:
    def make(self, n: int = 5) -> FigureSeries:
        fig = FigureSeries(
            title="Chart", x_label="N",
            x_values=tuple(float(i) for i in range(1, n + 1)),
            y_label="B",
        )
        fig.add("up", [0.1 * i for i in range(1, n + 1)])
        fig.add("down", [0.1 * (n - i) for i in range(n)])
        return fig

    def test_contains_markers_and_legend(self):
        text = render_ascii_chart(self.make())
        assert "*" in text and "o" in text
        assert "up" in text and "down" in text

    def test_axis_annotations(self):
        text = render_ascii_chart(self.make())
        assert "x: N" in text and "y: B" in text
        assert "0.5" in text  # y max

    def test_monotone_curve_renders_monotone(self):
        fig = FigureSeries(
            title="T", x_label="x", x_values=(1.0, 2.0, 3.0),
            y_label="y",
        )
        fig.add("c", [1.0, 2.0, 3.0])
        lines = render_ascii_chart(fig, width=30, height=10).splitlines()
        plot = [line for line in lines if "|" in line]
        # highest value appears on the top plot row, lowest on the bottom
        assert "*" in plot[0]
        assert "*" in plot[-1]

    def test_flat_curve_does_not_crash(self):
        fig = FigureSeries(
            title="T", x_label="x", x_values=(1.0, 2.0), y_label="y"
        )
        fig.add("c", [0.5, 0.5])
        assert "*" in render_ascii_chart(fig)

    def test_single_point(self):
        fig = FigureSeries(
            title="T", x_label="x", x_values=(1.0,), y_label="y"
        )
        fig.add("c", [2.0])
        assert "*" in render_ascii_chart(fig)

    def test_too_small_area_rejected(self):
        with pytest.raises(ConfigurationError):
            render_ascii_chart(self.make(), width=4, height=2)

    def test_empty_figure_rejected(self):
        fig = FigureSeries(
            title="T", x_label="x", x_values=(1.0,), y_label="y"
        )
        with pytest.raises(ConfigurationError):
            render_ascii_chart(fig)
