"""Tests for JSON model/solution serialization."""

from __future__ import annotations

import json

import pytest

from repro.core.model import CrossbarModel
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError
from repro.io import (
    class_from_dict,
    class_to_dict,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
    solution_to_dict,
)


@pytest.fixture
def model():
    return CrossbarModel(
        SwitchDimensions(6, 8),
        (
            TrafficClass.poisson(0.1, weight=2.0, name="data"),
            TrafficClass(alpha=0.05, beta=0.2, mu=1.5, a=2, name="video"),
        ),
    )


class TestClassRoundTrip:
    def test_roundtrip_preserves_fields(self, model):
        for cls in model.classes:
            clone = class_from_dict(class_to_dict(cls))
            assert clone == cls
            assert clone.name == cls.name

    def test_defaults(self):
        cls = class_from_dict({"alpha": 0.2})
        assert cls.beta == 0.0 and cls.mu == 1.0 and cls.a == 1
        assert cls.weight == cls.mu  # library default

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            class_from_dict({"alpha": 0.1, "lambda": 3})

    def test_missing_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            class_from_dict({"beta": 0.1})

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigurationError):
            class_from_dict([1, 2, 3])


class TestModelRoundTrip:
    def test_dict_roundtrip(self, model):
        clone = model_from_dict(model_to_dict(model))
        assert clone.dims == model.dims
        assert clone.classes == model.classes

    def test_file_roundtrip(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_model(model, path)
        clone = load_model(path)
        assert clone.dims == model.dims
        assert clone.classes == model.classes

    def test_file_is_valid_json(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_model(model, path)
        record = json.loads(path.read_text())
        assert record["n1"] == 6 and record["n2"] == 8

    def test_missing_key_rejected(self):
        with pytest.raises(ConfigurationError):
            model_from_dict({"n1": 4, "classes": []})

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_model(path)

    def test_roundtripped_model_solves_identically(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_model(model, path)
        clone = load_model(path)
        original = model.solve()
        recovered = clone.solve()
        assert recovered.blocking(0) == pytest.approx(
            original.blocking(0), rel=1e-14
        )


class TestSolutionExport:
    def test_contains_all_measures(self, model):
        record = solution_to_dict(model.solve())
        assert record["dims"] == [6, 8]
        assert len(record["classes"]) == 2
        entry = record["classes"][1]
        assert {"blocking", "call_congestion", "concurrency",
                "throughput", "kind"} <= set(entry)

    def test_json_serializable(self, model):
        json.dumps(solution_to_dict(model.solve()))
