"""Tests for the golden-snapshot corpus manager (repro.verify.corpus)."""

from __future__ import annotations

import json
import math
from types import SimpleNamespace

import pytest

from repro.verify.corpus import GoldenCorpus, figure_record

RECORD = {
    "x": [1.0, 2.0, 4.0],
    "curves": {"poisson": [0.1, 0.05, 0.025], "pascal": [0.2, 0.1, 0.05]},
}


@pytest.fixture
def corpus(tmp_path):
    return GoldenCorpus(tmp_path)


class TestStoreLoad:
    def test_round_trip_strips_provenance(self, corpus):
        corpus.store("fig", RECORD, generator="unit-test")
        assert corpus.load("fig") == RECORD

    def test_provenance_header_is_stamped(self, corpus):
        from repro import __version__

        corpus.store("fig", RECORD, generator="unit-test")
        provenance = corpus.provenance("fig")
        assert provenance["generator"] == "unit-test"
        assert provenance["library_version"] == __version__
        assert provenance["schema"] >= 1

    def test_legacy_headerless_file_loads(self, corpus, tmp_path):
        (tmp_path / "legacy.json").write_text(json.dumps(RECORD))
        assert corpus.load("legacy") == RECORD
        assert corpus.provenance("legacy") is None

    def test_names_lists_snapshots(self, corpus):
        corpus.store("b", RECORD)
        corpus.store("a", RECORD)
        assert corpus.names() == ["a", "b"]


class TestDiff:
    def test_identical_record_has_no_drift(self, corpus):
        corpus.store("fig", RECORD)
        assert corpus.diff("fig", RECORD) == []

    def test_missing_file_reported(self, corpus):
        (drift,) = corpus.diff("absent", RECORD)
        assert drift.kind == "missing"

    def test_value_drift_locates_worst_point(self, corpus):
        corpus.store("fig", RECORD)
        moved = json.loads(json.dumps(RECORD))
        moved["curves"]["pascal"][1] = 0.11
        (drift,) = corpus.diff("fig", moved)
        assert drift.kind == "value"
        assert "pascal" in drift.detail
        assert "point 1" in drift.detail
        assert drift.magnitude == pytest.approx(0.01 / 0.11)

    def test_round_off_is_not_drift(self, corpus):
        corpus.store("fig", RECORD)
        nudged = json.loads(json.dumps(RECORD))
        nudged["curves"]["poisson"][0] = 0.1 * (1.0 + 1e-12)
        assert corpus.diff("fig", nudged) == []

    def test_curve_set_changes_reported(self, corpus):
        corpus.store("fig", RECORD)
        changed = {
            "x": RECORD["x"],
            "curves": {"poisson": RECORD["curves"]["poisson"], "new": [1, 2, 3]},
        }
        kinds = {d.detail for d in corpus.diff("fig", changed)}
        assert any("disappeared" in d for d in kinds)
        assert any("appeared" in d for d in kinds)

    def test_x_grid_change_short_circuits(self, corpus):
        corpus.store("fig", RECORD)
        regridded = {"x": [1.0, 3.0, 4.0], "curves": RECORD["curves"]}
        (drift,) = corpus.diff("fig", regridded)
        assert drift.kind == "structure"
        assert "x grid" in drift.detail

    def test_check_raises_with_readable_report(self, corpus):
        corpus.store("fig", RECORD)
        moved = json.loads(json.dumps(RECORD))
        moved["curves"]["poisson"][2] = 99.0
        with pytest.raises(AssertionError, match="poisson"):
            corpus.check("fig", moved)


class TestFigureRecord:
    def _figure(self, values):
        curve = SimpleNamespace(label="c", values=values)
        return SimpleNamespace(x_values=[1, 2], curves=[curve])

    def test_coerces_to_plain_floats(self):
        record = figure_record(self._figure([1, 2]))
        assert record == {"x": [1.0, 2.0], "curves": {"c": [1.0, 2.0]}}

    def test_rejects_non_finite_values(self):
        with pytest.raises(ValueError, match="non-finite"):
            figure_record(self._figure([1.0, math.nan]))
        with pytest.raises(ValueError, match="non-finite"):
            figure_record(self._figure([math.inf, 1.0]))
