"""Cross-validating the daemon's measured 503 rate against theory.

The admission gate with unit-weight requests, a deterministic holding
time ``H`` (the ``min_hold`` knob) and Poisson arrivals of rate
``lambda`` *is* an ``M/D/c/c`` loss system.  By the Erlang-B
insensitivity property its blocking probability equals ``M/M/c/c``:
``B = erlang_b(c, lambda * H)`` — so a seeded open-loop client can
measure the daemon's 503 rate and compare it to the repo's own
:func:`repro.baselines.erlang.erlang_b` baseline.

A second, bursty client (Pascal-like: geometric batches at the same
offered call rate) must then measure *higher* blocking — the paper's
central claim, observed live on the service's admission gate rather
than computed from the model.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

pytestmark = pytest.mark.service  # daemon plus Monte-Carlo cross-validation

from repro.api import SolveRequest
from repro.baselines.erlang import erlang_b
from repro.core.traffic import TrafficClass
from repro.engine import BatchSolver, EngineConfig
from repro.service import (
    AdmissionRejectedError,
    ServiceClient,
    ServiceConfig,
    start_in_thread,
)

CAPACITY = 2          #: gate tokens ("servers")
HOLD = 0.05           #: deterministic holding time H (seconds)
RATE = 40.0           #: offered call rate lambda (1/s) -> A = 2 erlangs
ARRIVALS = 220        #: measured arrivals per client
SEED = 19920817       #: SIGCOMM '92
#: Absolute tolerance on the measured ratio: ~4 binomial standard
#: errors at B=0.4 / 220 trials, plus timing jitter headroom.
TOLERANCE = 0.13

REQUEST = SolveRequest.square(4, [TrafficClass.poisson(0.01)])


class OpenLoopTally:
    """Thread-safe admitted/rejected counts from one client run."""

    def __init__(self) -> None:
        self.admitted = 0
        self.rejected = 0
        self._lock = threading.Lock()

    def call(self, client: ServiceClient) -> None:
        try:
            client.solve(REQUEST)
        except AdmissionRejectedError:
            with self._lock:
                self.rejected += 1
        else:
            with self._lock:
                self.admitted += 1

    @property
    def offered(self) -> int:
        return self.admitted + self.rejected

    @property
    def ratio(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0


def run_open_loop(client: ServiceClient, burst_mean: float,
                  rng: random.Random) -> OpenLoopTally:
    """Fire ``ARRIVALS`` calls open-loop: arrivals never wait for
    completions, exactly like offered traffic at a loss system.

    ``burst_mean == 1`` sends a pure Poisson stream; ``burst_mean > 1``
    sends Poisson-arriving *batches* with geometric sizes (mean
    ``burst_mean``) at the same per-call rate — a Pascal-like bursty
    stream with peakedness above 1.
    """
    tally = OpenLoopTally()
    threads: list[threading.Thread] = []
    sent = 0
    batch_rate = RATE / burst_mean
    while sent < ARRIVALS:
        time.sleep(rng.expovariate(batch_rate))
        burst = 1
        if burst_mean > 1.0:
            # Geometric on {1, 2, ...} with the requested mean.
            while rng.random() < 1.0 - 1.0 / burst_mean:
                burst += 1
        burst = min(burst, ARRIVALS - sent)
        for _ in range(burst):
            thread = threading.Thread(target=tally.call, args=(client,))
            thread.start()
            threads.append(thread)
        sent += burst
    for thread in threads:
        thread.join(10.0)
    return tally


@pytest.fixture(scope="module")
def loss_system():
    """A daemon configured as an M/D/c/c loss system (c = CAPACITY)."""
    handle = start_in_thread(
        ServiceConfig(port=0, gate_capacity=CAPACITY, batch_window=0.001,
                      min_hold=HOLD),
        engine=BatchSolver(EngineConfig()),
    )
    try:
        client = ServiceClient(*handle.address)
        client.solve(REQUEST)  # warm the cache so holds are ~min_hold
        yield handle, client
    finally:
        handle.stop()


def test_poisson_503_rate_matches_erlang_b(loss_system):
    handle, client = loss_system
    offered_load = RATE * HOLD
    expected = erlang_b(CAPACITY, offered_load)
    tally = run_open_loop(client, burst_mean=1.0,
                          rng=random.Random(SEED))
    assert tally.offered == ARRIVALS
    assert abs(tally.ratio - expected) < TOLERANCE, (
        f"measured 503 rate {tally.ratio:.3f} vs "
        f"Erlang B({CAPACITY}, {offered_load}) = {expected:.3f}"
    )
    # The daemon's own ledger agrees with the client's tally: the gate
    # counted exactly the calls we made (plus the one warmup).
    gate = handle.service.gate.snapshot()
    assert gate.rejected >= tally.rejected
    assert gate.peak_in_use <= CAPACITY


def test_bursty_503_rate_exceeds_poisson_baseline(loss_system):
    """Same offered call rate, geometric bursts: more blocking.

    This is the paper's thesis measured on a live system — peakedness
    above 1 strictly degrades blocking at equal load (Figure 2's
    ordering), here on the admission gate instead of the crossbar.
    """
    _handle, client = loss_system
    expected_poisson = erlang_b(CAPACITY, RATE * HOLD)
    bursty = run_open_loop(client, burst_mean=3.0,
                           rng=random.Random(SEED + 1))
    assert bursty.offered == ARRIVALS
    assert bursty.ratio > expected_poisson + 0.05, (
        f"bursty 503 rate {bursty.ratio:.3f} should exceed the Poisson "
        f"Erlang-B baseline {expected_poisson:.3f}"
    )


def test_insensitivity_knob_is_what_the_config_documents():
    """``min_hold=0`` means holds are just solve times (no pacing)."""
    handle = start_in_thread(
        ServiceConfig(port=0, gate_capacity=CAPACITY, batch_window=0.001),
        engine=BatchSolver(EngineConfig()),
    )
    try:
        client = ServiceClient(*handle.address)
        began = time.perf_counter()
        client.solve(REQUEST)
        client.solve(REQUEST)  # cached: far faster than any HOLD
        assert time.perf_counter() - began < 2 * HOLD + 1.0
    finally:
        handle.stop()
