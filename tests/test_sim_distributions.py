"""Tests for the service-time distribution family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sim.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
    LogNormalService,
    ParetoService,
    UniformService,
    from_name,
)

ALL = [
    Exponential(2.0),
    Deterministic(2.0),
    Erlang(2.0, k=3),
    HyperExponential(2.0, p=0.2),
    UniformService(2.0),
    LogNormalService(2.0, target_scv=1.5),
    ParetoService(2.0, alpha=3.0),
]


class TestMeans:
    @pytest.mark.parametrize("dist", ALL, ids=[type(d).__name__ for d in ALL])
    def test_empirical_mean_matches(self, dist):
        rng = np.random.default_rng(42)
        n = 200_000
        samples = np.array([dist.sample(rng) for _ in range(n)])
        tolerance = 6.0 * np.sqrt(max(dist.scv, 1e-9)) * 2.0 / np.sqrt(n)
        assert samples.mean() == pytest.approx(2.0, abs=max(tolerance, 0.02))

    @pytest.mark.parametrize("dist", ALL, ids=[type(d).__name__ for d in ALL])
    def test_samples_positive(self, dist):
        rng = np.random.default_rng(3)
        assert all(dist.sample(rng) >= 0.0 for _ in range(1000))


class TestScv:
    def test_ordering(self):
        assert Deterministic(1.0).scv == 0.0
        assert Erlang(1.0, k=4).scv == pytest.approx(0.25)
        assert UniformService(1.0).scv == pytest.approx(1.0 / 3.0)
        assert Exponential(1.0).scv == 1.0
        assert HyperExponential(1.0, p=0.1).scv > 1.0
        assert ParetoService(1.0, alpha=2.5).scv == pytest.approx(5.0)

    def test_empirical_scv_hyperexponential(self):
        dist = HyperExponential(1.0, p=0.1)
        rng = np.random.default_rng(11)
        samples = np.array([dist.sample(rng) for _ in range(300_000)])
        empirical = samples.var() / samples.mean() ** 2
        assert empirical == pytest.approx(dist.scv, rel=0.05)

    def test_empirical_scv_lognormal(self):
        dist = LogNormalService(1.0, target_scv=2.0)
        rng = np.random.default_rng(13)
        samples = np.array([dist.sample(rng) for _ in range(300_000)])
        empirical = samples.var() / samples.mean() ** 2
        assert empirical == pytest.approx(2.0, rel=0.1)


class TestValidation:
    def test_nonpositive_mean_rejected(self):
        for factory in (Exponential, Deterministic, UniformService):
            with pytest.raises(InvalidParameterError):
                factory(0.0)

    def test_erlang_needs_positive_k(self):
        with pytest.raises(InvalidParameterError):
            Erlang(1.0, k=0)

    def test_hyperexponential_p_range(self):
        with pytest.raises(InvalidParameterError):
            HyperExponential(1.0, p=1.0)

    def test_pareto_needs_finite_variance(self):
        with pytest.raises(InvalidParameterError):
            ParetoService(1.0, alpha=2.0)

    def test_lognormal_needs_positive_scv(self):
        with pytest.raises(InvalidParameterError):
            LogNormalService(1.0, target_scv=0.0)


class TestRegistry:
    def test_from_name(self):
        dist = from_name("erlang", 3.0, k=2)
        assert isinstance(dist, Erlang)
        assert dist.mean == 3.0

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            from_name("zipf", 1.0)
