"""Cluster-scale chaos: seeded fleet-level fault storms.

The PR-8 acceptance harness: a seeded :class:`ClusterFaultPlan` drives
SIGKILL storms, SIGSTOP stalls, refuse-connection windows, shared-
cache corruption and crash-loops against live fleets while client
traffic hammers the router, proving

* **zero hung connections** — every client call returns (bounded by
  its own timeout), never parks on a stalled or killed worker;
* **zero leaked admission tokens** — after quiescence every worker's
  gate reads ``in_use == 0``;
* **byte identity** — every successful reply matches a local solve,
  storm or no storm;
* **bounded error surface** — clients see only 200s and 503s, and the
  503 fraction stays small because failover absorbs respawn windows;
* **flap dampening** — a crash-looping slot trips its breaker instead
  of burning respawns at full rate, and still heals afterwards.
"""

from __future__ import annotations

import json
import threading
import time
from http.client import HTTPConnection

import pytest

pytestmark = pytest.mark.service  # spawns worker fleets

from repro.api import SolveRequest, solve
from repro.core.traffic import TrafficClass
from repro.engine.chaos import (
    ClusterFault,
    ClusterFaultInjector,
    ClusterFaultPlan,
    KIND_CRASH_LOOP,
    KIND_WORKER_KILL,
    KIND_WORKER_STALL,
    corrupt_shared_cache,
)
from repro.exceptions import ConfigurationError
from repro.service import (
    ClusterConfig,
    ServiceClient,
    ServiceConfig,
    start_cluster_in_thread,
)
from repro.service.sharding import HashRing

REQUESTS = [
    SolveRequest.square(
        n,
        [
            TrafficClass.poisson(0.002, name="data"),
            TrafficClass(alpha=0.001, beta=0.0005, name="video"),
        ],
    )
    for n in (4, 5, 6, 7)
]

LOCAL_BYTES = {}


def solution_bytes(fragment: dict) -> str:
    record = dict(fragment)
    record.pop("from_cache", None)
    record.pop("degraded", None)
    return json.dumps(record, sort_keys=True)


def local_bytes(request: SolveRequest) -> str:
    key = request.cache_key
    if key not in LOCAL_BYTES:
        from repro.service.protocol import encode_result

        LOCAL_BYTES[key] = solution_bytes(encode_result(solve(request)))
    return LOCAL_BYTES[key]


def wire_solve(
    host: str, port: int, request: SolveRequest, timeout: float = 30.0
) -> tuple[int, int | None, int | None, dict]:
    connection = HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST", "/solve",
            body=json.dumps({"request": request.to_dict()}).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        raw = response.read()
        shard = response.getheader("X-Shard")
        failover = response.getheader("X-Shard-Failover")
        return (
            response.status,
            int(shard) if shard is not None else None,
            int(failover) if failover is not None else None,
            json.loads(raw.decode()),
        )
    finally:
        connection.close()


def fleet_config(tmp_path, workers: int, **cluster_overrides):
    defaults = dict(
        workers=workers,
        cache_dir=str(tmp_path),
        health_interval=0.05,
        respawn_backoff_base=0.05,
        respawn_backoff_cap=0.3,
        flap_window=0.3,
        flap_threshold=3,
        flap_cooldown=0.4,
        proxy_timeout=5.0,
        max_respawns=10,
    )
    defaults.update(cluster_overrides)
    return ServiceConfig(port=0, cluster=ClusterConfig(**defaults))


def await_fleet_live(client: ServiceClient, budget: float = 60.0) -> dict:
    deadline = time.monotonic() + budget
    while True:
        chart = client.cluster_map(refresh=True)
        if all(
            entry["state"] == "live" for entry in chart["shards"]
        ):
            return chart
        assert time.monotonic() < deadline, (
            f"fleet never fully recovered: {chart['shards']}"
        )
        time.sleep(0.1)


# ----------------------------------------------------------------------
# Plan mechanics (no fleet)
# ----------------------------------------------------------------------


def test_plan_from_seed_is_deterministic_and_kills_every_shard():
    first = ClusterFaultPlan.from_seed(
        11, 3, kills_per_shard=2, stalls=1, corruptions=1, crash_loops=1
    )
    again = ClusterFaultPlan.from_seed(
        11, 3, kills_per_shard=2, stalls=1, corruptions=1, crash_loops=1
    )
    assert first == again
    other = ClusterFaultPlan.from_seed(12, 3, kills_per_shard=2)
    assert first != other
    # The guarantee the acceptance test leans on: every shard's SIGKILL
    # budget is explicit in the plan.
    kills = ClusterFaultPlan.from_seed(
        7, 3, kills_per_shard=2
    ).kills_per_shard()
    assert kills == {0: 2, 1: 2, 2: 2}
    # Faults fire in time order and the horizon covers them all.
    ats = [fault.at for fault in first.faults]
    assert ats == sorted(ats)
    assert first.horizon >= max(ats)


def test_cluster_fault_rejects_nonsense():
    with pytest.raises(ConfigurationError):
        ClusterFault(kind="meteor-strike")
    with pytest.raises(ConfigurationError):
        ClusterFault(kind=KIND_WORKER_KILL, shard=-1)
    with pytest.raises(ConfigurationError):
        ClusterFault(kind=KIND_CRASH_LOOP, count=0)
    with pytest.raises(ConfigurationError):
        ClusterFaultPlan.from_seed(1, 0)


def test_corrupt_shared_cache_touches_every_entry(tmp_path):
    for name in ("a.json", "b.json"):
        (tmp_path / name).write_text('{"fine": true}')
    (tmp_path / "note.txt").write_text("not a cache entry")
    assert corrupt_shared_cache(str(tmp_path)) == 2
    for name in ("a.json", "b.json"):
        with pytest.raises(ValueError):
            json.loads((tmp_path / name).read_text())
    assert corrupt_shared_cache(None) == 0


# ----------------------------------------------------------------------
# The storm (acceptance)
# ----------------------------------------------------------------------


def test_seeded_kill_storm_leaves_no_damage(tmp_path):
    """SIGKILL every worker of a 3-shard fleet (twice each, seeded
    instants) while clients hammer the router: no hung or dropped
    connections, only 200/503 on the wire, byte-identical successes,
    zero admission tokens leaked, full fleet recovery."""
    plan = ClusterFaultPlan.from_seed(
        23, 3, kills_per_shard=2, horizon=5.0
    )
    config = fleet_config(tmp_path, workers=3)
    with start_cluster_in_thread(config) as handle:
        client = ServiceClient(*handle.address)
        await_fleet_live(client)
        for request in REQUESTS:  # warm every path before the storm
            status, _, _, _ = wire_solve(*handle.address, request)
            assert status == 200

        injector = ClusterFaultInjector(plan)
        storm = threading.Thread(
            target=injector.run, args=(handle,), name="chaos-storm"
        )
        outcomes: list[tuple[int, int, str | None]] = []
        failures: list[str] = []
        lock = threading.Lock()
        stop = threading.Event()

        def hammer(worker_index: int) -> None:
            i = worker_index
            while not stop.is_set():
                request = REQUESTS[i % len(REQUESTS)]
                i += 1
                try:
                    status, _, _, envelope = wire_solve(
                        *handle.address, request, timeout=20.0
                    )
                except Exception as exc:  # noqa: BLE001 - tallied below
                    with lock:
                        failures.append(f"{type(exc).__name__}: {exc}")
                    continue
                body = (
                    solution_bytes(envelope["result"])
                    if status == 200 else None
                )
                with lock:
                    outcomes.append((i - 1, status, body))

        threads = [
            threading.Thread(target=hammer, args=(n,), daemon=True)
            for n in range(4)
        ]
        storm.start()
        for thread in threads:
            thread.start()
        storm.join(plan.horizon + 60.0)
        assert not storm.is_alive(), "injector hung"
        time.sleep(0.5)  # let in-flight failovers complete under load
        stop.set()
        for thread in threads:
            thread.join(30.0)
            assert not thread.is_alive(), "hammer thread hung"

        # Every planned fault fired.
        assert len(injector.fired) == len(plan.faults)
        # Zero hung or dropped client connections.
        assert failures == []
        # Only the documented statuses, and failover keeps the
        # client-visible error surface small.
        statuses = {status for _, status, _ in outcomes}
        assert statuses <= {200, 503}
        total = len(outcomes)
        rejected = sum(1 for _, s, _ in outcomes if s == 503)
        assert total > 0
        assert rejected / total < 0.2, (
            f"{rejected}/{total} rejected: failover did not absorb "
            "the respawn windows"
        )
        # Byte identity of every success against a local solve.
        for index, status, body in outcomes:
            if status == 200:
                assert body == local_bytes(REQUESTS[index % len(REQUESTS)])

        # The fleet heals: every slot live again, kills accounted for.
        chart = await_fleet_live(client)
        respawns = {
            entry["shard"]: entry["respawns"]
            for entry in chart["shards"]
        }
        assert all(count >= 1 for count in respawns.values()), respawns
        assert sum(respawns.values()) >= 4, respawns
        assert chart["dead_shards"] == []

        # Zero leaked admission tokens once quiescent.
        for shard in range(3):
            assert client.metric_value(
                "repro_service_gate_tokens",
                shard=str(shard), state="in_use",
            ) == 0.0

        # Traffic still lands on the owners afterwards.
        ring = HashRing(chart["workers"], chart["hash_replicas"])
        for request in REQUESTS:
            status, shard, failover, envelope = wire_solve(
                *handle.address, request
            )
            assert status == 200
            assert shard == ring.shard_for(request.cache_key)
            assert failover is None
            assert solution_bytes(envelope["result"]) \
                == local_bytes(request)


def test_stalled_worker_costs_a_failover_not_a_hang(tmp_path):
    """SIGSTOP the owner of a key: the proxy timeout converts the
    stall into an immediate failover (200 from the peer), and the
    slot serves again after SIGCONT."""
    config = fleet_config(tmp_path, workers=2, proxy_timeout=0.75)
    with start_cluster_in_thread(config) as handle:
        client = ServiceClient(*handle.address)
        chart = await_fleet_live(client)
        ring = HashRing(chart["workers"], chart["hash_replicas"])
        request = REQUESTS[0]
        owner = ring.shard_for(request.cache_key)
        peer = 1 - owner
        assert wire_solve(*handle.address, request)[0] == 200

        fault = ClusterFault(
            kind=KIND_WORKER_STALL, shard=owner, duration=2.5
        )
        injector = ClusterFaultInjector(
            ClusterFaultPlan(faults=(fault,))
        )
        stall = threading.Thread(target=injector.run, args=(handle,))
        stall.start()
        time.sleep(0.2)  # let SIGSTOP land
        began = time.monotonic()
        status, shard, failover, envelope = wire_solve(
            *handle.address, request, timeout=15.0
        )
        elapsed = time.monotonic() - began
        stall.join(30.0)
        assert elapsed < 5.0, "stalled worker hung the client"
        assert (status, shard, failover) == (200, peer, owner)
        assert solution_bytes(envelope["result"]) == local_bytes(request)

        # SIGCONT: the owner takes its keyspace back, no respawn burnt.
        deadline = time.monotonic() + 30.0
        while True:
            status, shard, failover, _ = wire_solve(
                *handle.address, request
            )
            if (status, shard, failover) == (200, owner, None):
                break
            assert time.monotonic() < deadline, "owner never resumed"
            time.sleep(0.2)
        entry = next(
            e for e in client.cluster_map(refresh=True)["shards"]
            if e["shard"] == owner
        )
        assert entry["respawns"] == 0


def test_crash_loop_trips_the_flap_breaker_then_heals(tmp_path):
    """Kill three consecutive incarnations of one slot: every death
    lands inside flap_window, the slot's breaker trips (respawns
    pause), and after the cooldown the slot still heals."""
    config = fleet_config(
        tmp_path, workers=2,
        flap_window=10.0,  # every death in this test is a flap
        flap_threshold=2,
        flap_cooldown=0.4,
    )
    with start_cluster_in_thread(config) as handle:
        client = ServiceClient(*handle.address)
        await_fleet_live(client)
        victim = 0
        fault = ClusterFault(
            kind=KIND_CRASH_LOOP, shard=victim, duration=15.0, count=3
        )
        ClusterFaultInjector(
            ClusterFaultPlan(faults=(fault,))
        ).run(handle)

        # The injector returns as soon as its last SIGKILL is sent;
        # the supervisor still has deaths to *observe*.  Wait for the
        # breaker to trip rather than snapshotting instantly.
        deadline = time.monotonic() + 60.0
        while handle.flap_breaker(victim)["trips"] < 1:
            assert time.monotonic() < deadline, (
                f"breaker never tripped: {handle.flap_breaker(victim)}"
            )
            time.sleep(0.05)

        # Healing: the half-open probe respawn survives (nobody kills
        # it), the slot answers again, and its breaker closes.  Wait
        # for the *fourth* incarnation (respawns >= 3) — earlier ones
        # can flash "live" before the injector's kill is observed.
        while True:
            chart = client.cluster_map(refresh=True)
            entry = next(
                e for e in chart["shards"] if e["shard"] == victim
            )
            if entry["state"] == "live" and entry["respawns"] >= 3:
                break
            assert time.monotonic() < deadline, (
                f"slot never healed: {entry}"
            )
            time.sleep(0.1)
        assert chart["dead_shards"] == []
        request = next(
            r for r in REQUESTS
            if HashRing(2).shard_for(r.cache_key) == victim
        )
        status, shard, _, _ = wire_solve(*handle.address, request)
        assert (status, shard) == (200, victim)


def test_corrupted_shared_cache_never_corrupts_answers(tmp_path):
    """Scribble garbage over the fleet's shared disk cache mid-flight:
    every worker's quarantine path absorbs it and replies stay
    byte-identical."""
    config = fleet_config(tmp_path, workers=2)
    with start_cluster_in_thread(config) as handle:
        client = ServiceClient(*handle.address)
        await_fleet_live(client)
        for request in REQUESTS:  # populate the shared store
            assert wire_solve(*handle.address, request)[0] == 200
        assert corrupt_shared_cache(handle.cache_dir) > 0
        for request in REQUESTS:
            status, _, _, envelope = wire_solve(*handle.address, request)
            assert status == 200
            assert solution_bytes(envelope["result"]) \
                == local_bytes(request)


def test_max_respawns_exhaustion_is_first_class_dead(tmp_path):
    """Satellite: a slot that exhausts max_respawns is declared dead —
    /cluster says so, /healthz goes non-200, the gauge flips — while
    its keys keep answering through the peer."""
    config = fleet_config(
        tmp_path, workers=2,
        max_respawns=1,
        flap_threshold=10,  # keep the breaker out of this test's way
    )
    with start_cluster_in_thread(config) as handle:
        client = ServiceClient(*handle.address)
        await_fleet_live(client)
        victim = 0
        # Kill the original and then its only allowed respawn.
        ClusterFaultInjector(ClusterFaultPlan(faults=(
            ClusterFault(
                kind=KIND_CRASH_LOOP, shard=victim,
                duration=30.0, count=2,
            ),
        ))).run(handle)

        deadline = time.monotonic() + 30.0
        while True:
            chart = client.cluster_map(refresh=True)
            entry = next(
                e for e in chart["shards"] if e["shard"] == victim
            )
            if entry["dead"]:
                break
            assert time.monotonic() < deadline, (
                f"exhaustion never declared: {entry}"
            )
            time.sleep(0.05)
        assert entry["state"] == "dead"
        assert entry["respawns"] == 1
        assert chart["dead_shards"] == [victim]

        connection = HTTPConnection(*handle.address, timeout=30.0)
        try:
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            payload = json.loads(response.read().decode())
        finally:
            connection.close()
        assert response.status == 503
        assert payload["dead_shards"] == [victim]

        assert client.metric_value(
            "repro_cluster_shard_dead", shard=str(victim)
        ) == 1.0

        request = next(
            r for r in REQUESTS
            if HashRing(2).shard_for(r.cache_key) == victim
        )
        status, shard, failover, _ = wire_solve(*handle.address, request)
        assert (status, shard, failover) == (200, 1 - victim, victim)
