"""Tests for the generating-function machinery (paper eq. 5)."""

from __future__ import annotations

import math

import pytest

from repro.core.convolution import log_q_grid
from repro.core.generating import (
    class_series,
    closed_form_class_series,
    evaluate_z,
    normalization_series,
    q_from_series,
)
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError


class TestClassSeries:
    def test_poisson_series_is_exponential(self):
        cls = TrafficClass.poisson(0.5)
        series = class_series(cls, 5)
        for k in range(6):
            assert series[k] == pytest.approx(0.5**k / math.factorial(k))

    def test_multirate_strides(self):
        cls = TrafficClass.poisson(0.5, a=2)
        series = class_series(cls, 6)
        assert series[1] == 0.0 and series[3] == 0.0 and series[5] == 0.0
        assert series[2] == pytest.approx(0.5)
        assert series[4] == pytest.approx(0.5**2 / 2)

    def test_bernoulli_terminates(self):
        cls = TrafficClass.bernoulli(2, 0.3)
        series = class_series(cls, 6)
        assert series[3] == 0.0 and series[4] == 0.0

    @pytest.mark.parametrize(
        "cls",
        [
            TrafficClass.poisson(0.7),
            TrafficClass(alpha=0.2, beta=0.4),
            TrafficClass.bernoulli(3, 0.25),
            TrafficClass(alpha=0.1, beta=0.3, a=2, mu=1.5),
        ],
        ids=["poisson", "pascal", "bernoulli", "multirate"],
    )
    def test_closed_form_matches_definition(self, cls):
        """Verifies eq. 5's per-class algebra: exp / (1 - b u)^(-a/b)."""
        direct = class_series(cls, 10)
        closed = closed_form_class_series(cls, 10)
        for d, c in zip(direct, closed):
            assert d == pytest.approx(c, rel=1e-12, abs=1e-15)


class TestNormalizationFromSeries:
    def test_matches_recursion(self, small_dims, mixed_classes):
        lq = log_q_grid(small_dims, mixed_classes)
        q = q_from_series(small_dims, mixed_classes)
        assert math.log(q) == pytest.approx(
            lq[small_dims.n1, small_dims.n2], rel=1e-12
        )

    def test_closed_form_flag(self, small_dims, mixed_classes):
        a = q_from_series(small_dims, mixed_classes, closed_form=False)
        b = q_from_series(small_dims, mixed_classes, closed_form=True)
        assert a == pytest.approx(b, rel=1e-12)

    def test_empty_classes_rejected(self):
        with pytest.raises(ConfigurationError):
            normalization_series([], 4)


class TestEvaluateZ:
    def test_series_sum_converges_to_closed_form(self):
        """Sum Q(N) t1^N1 t2^N2 over a large grid ~ Z(t1, t2)."""
        classes = [
            TrafficClass.poisson(0.3),
            TrafficClass(alpha=0.1, beta=0.2),
        ]
        t1, t2 = 0.4, 0.3
        grid = log_q_grid(SwitchDimensions(24, 24), classes)
        total = 0.0
        for n1 in range(25):
            for n2 in range(25):
                total += math.exp(
                    grid[n1, n2] + n1 * math.log(t1) + n2 * math.log(t2)
                )
        assert total == pytest.approx(
            evaluate_z(classes, t1, t2), rel=1e-8
        )

    def test_divergence_detected(self):
        classes = [TrafficClass(alpha=0.1, beta=0.9)]
        with pytest.raises(ConfigurationError):
            evaluate_z(classes, 2.0, 2.0)  # b u >= 1

    def test_poisson_only_is_pure_exponential(self):
        classes = [TrafficClass.poisson(0.5)]
        t1, t2 = 0.2, 0.7
        expected = math.exp(t1 + t2 + 0.5 * t1 * t2)
        assert evaluate_z(classes, t1, t2) == pytest.approx(expected)
