"""Every exception class in :mod:`repro.exceptions` has a live raise path.

One test per class (plus the hierarchy contract), so that dead error
branches cannot silently rot: if a refactor stops raising one of these,
this module fails.
"""

from __future__ import annotations

import argparse

import pytest

from repro.cli import _parse_classes
from repro.core.asymptotic import solve_asymptotic
from repro.core.convolution import solve_convolution
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.ctmc.generator import IndexedStateSpace
from repro.ctmc.solve import stationary_vector
from repro.exceptions import (
    ComputationError,
    ConfigurationError,
    ConvergenceError,
    CrossbarError,
    InvalidParameterError,
    OverflowInRecursionError,
    SimulationError,
)
from repro.sim.stats import TimeWeightedMean, t_confidence_interval
from repro.validation import cross_validate


class TestHierarchy:
    def test_every_class_derives_from_crossbar_error(self):
        for exc in (
            ConfigurationError,
            InvalidParameterError,
            ComputationError,
            OverflowInRecursionError,
            ConvergenceError,
            SimulationError,
        ):
            assert issubclass(exc, CrossbarError)

    def test_parameter_errors_are_configuration_errors(self):
        assert issubclass(InvalidParameterError, ConfigurationError)

    def test_numeric_errors_are_computation_errors(self):
        assert issubclass(OverflowInRecursionError, ComputationError)
        assert issubclass(ConvergenceError, ComputationError)


class TestRaisePaths:
    def test_crossbar_error_from_cli_argument_parsing(self):
        args = argparse.Namespace(poisson=None, pascal=None, bernoulli=None)
        with pytest.raises(CrossbarError):
            _parse_classes(args)

    def test_configuration_error_from_empty_traffic_mix(self):
        from repro.sim.crossbar import AsynchronousCrossbarSimulator

        with pytest.raises(ConfigurationError):
            AsynchronousCrossbarSimulator(SwitchDimensions(2, 2), [])

    def test_invalid_parameter_error_from_pascal_beta(self):
        with pytest.raises(InvalidParameterError):
            TrafficClass(alpha=0.1, beta=1.5, mu=1.0)

    def test_computation_error_from_empty_solver_chain(self):
        from repro.robust.facade import solve_robust

        with pytest.raises(ComputationError):
            solve_robust(
                SwitchDimensions(2, 2),
                [TrafficClass.poisson(0.1)],
                chain=(),
            )

    def test_overflow_in_unscaled_recursion(self):
        dims = SwitchDimensions.square(200)
        with pytest.raises(OverflowInRecursionError):
            solve_convolution(
                dims, [TrafficClass.poisson(1e-5)], mode="float"
            )

    def test_convergence_error_from_asymptotic_bisection(self):
        dims = SwitchDimensions.square(64)
        classes = [TrafficClass.poisson(0.5)]
        with pytest.raises(ConvergenceError):
            solve_asymptotic(dims, classes, max_iter=1)

    def test_convergence_error_from_power_iteration(self):
        space = IndexedStateSpace.build(
            SwitchDimensions(3, 3), [TrafficClass.poisson(0.3)]
        )
        with pytest.raises(ConvergenceError):
            stationary_vector(space, method="power", max_iter=1)

    def test_simulation_error_from_time_going_backwards(self):
        stat = TimeWeightedMean()
        stat.update(1.0, 5.0)
        with pytest.raises(SimulationError):
            stat.update(1.0, 4.0)

    def test_simulation_error_from_empty_replications(self):
        with pytest.raises(SimulationError):
            t_confidence_interval([])


class TestCrossValidateSkipPaths:
    """The skipped-solver guards added around series and exact."""

    def setup_method(self):
        self.dims = SwitchDimensions(3, 3)
        self.classes = [TrafficClass.poisson(0.2, name="p")]

    def test_series_failure_is_skipped_not_fatal(self, monkeypatch):
        def explode(dims, classes):
            raise ComputationError("injected series failure")

        monkeypatch.setattr("repro.validation.solve_series", explode)
        report = cross_validate(self.dims, self.classes)
        assert "series" not in report.methods
        assert ("series", "injected series failure") in report.skipped
        assert report.consistent  # remaining methods still agree
        assert "skipped (injected series failure)" in report.render()

    def test_exact_failure_is_skipped_not_fatal(self, monkeypatch):
        def explode(dims, classes):
            raise ComputationError("injected exact failure")

        monkeypatch.setattr("repro.validation.solve_exact", explode)
        report = cross_validate(self.dims, self.classes)
        assert "exact" not in report.methods
        assert ("exact", "injected exact failure") in report.skipped
        assert report.consistent

    def test_all_solvers_skipped_is_inconsistent(self, monkeypatch):
        def explode(*args, **kwargs):
            raise ComputationError("nothing works")

        for name in (
            "solve_convolution",
            "solve_mva",
            "solve_series",
            "solve_exact",
        ):
            monkeypatch.setattr(f"repro.validation.{name}", explode)
        # Push the state space over the enumeration limit so brute
        # force and the CTMC are skipped too.
        monkeypatch.setattr("repro.validation.ENUMERATION_LIMIT", -1)
        report = cross_validate(self.dims, self.classes)
        assert report.methods == ()
        assert not report.consistent
        assert "INCONSISTENT" in report.render()
