"""Bisection boundary regressions for the dimensioning helpers.

``find_size_for_blocking`` answers the designer's question "what is the
smallest switch meeting this blocking objective" by binary search; an
off-by-one in the bracket update returns a switch one size too small
(violating the objective) or too large (wasting a row and column of
crosspoints) while still looking plausible.  These tests pin the
boundary semantics against the exact rational solver:

* the returned ``n`` meets the target AND ``n - 1`` does not (true
  minimality, checked with exact arithmetic, not just the float path);
* a target exactly equal to an achievable blocking value is treated as
  met (``<=``, not ``<``);
* ``n_min``/``n_max`` edges and the infeasible case.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.exact import solve_exact
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError
from repro.workloads.sweeps import find_load_for_blocking, find_size_for_blocking

POISSON = TrafficClass.poisson(0.3)


def decaying_poisson(n: int):
    # Per-pair load falling like 1/n^2 (fixed total offered traffic):
    # the regime where growing the switch genuinely reduces blocking.
    # Constant per-pair or constant-aggregate loads *increase* blocking
    # with size (more contention), so bisection does not apply to them.
    return [TrafficClass.poisson(0.2 / n**2)]


def exact_blocking(n: int, classes) -> Fraction:
    solution = solve_exact(SwitchDimensions.square(n), tuple(classes))
    return solution.blocking(0)


def test_found_size_is_minimal():
    target = 0.06
    n_star = find_size_for_blocking(decaying_poisson, target, n_max=64)
    assert float(exact_blocking(n_star, decaying_poisson(n_star))) <= target
    if n_star > 1:
        assert (
            float(exact_blocking(n_star - 1, decaying_poisson(n_star - 1)))
            > target
        )


def test_found_size_is_minimal_mixed_classes():
    # Two-class mix (smooth + peaky) with both BPP parameters decaying
    # like 1/n^2, dimensioned on the *pascal* class (r=1).
    def classes_for(n: int):
        return [
            TrafficClass.poisson(0.1 / n**2),
            TrafficClass(alpha=0.1 / n**2, beta=0.4 / n**2, mu=1.0, a=1),
        ]

    def pascal_blocking(n: int) -> float:
        solution = solve_exact(
            SwitchDimensions.square(n), tuple(classes_for(n))
        )
        return float(solution.blocking(1))

    target = 0.02
    n_star = find_size_for_blocking(classes_for, target, r=1, n_max=48)
    assert pascal_blocking(n_star) <= target
    if n_star > 1:
        assert pascal_blocking(n_star - 1) > target


def test_target_exactly_achievable_is_met_not_exceeded():
    # A target equal to the blocking AT some size must return that size:
    # the bracket update keeps `<=` candidates, so ties resolve down.
    from repro.workloads.sweeps import _solution

    n_tie = 5
    tie_blocking = _solution(
        SwitchDimensions.square(n_tie), tuple(decaying_poisson(n_tie))
    ).blocking(0)
    n_star = find_size_for_blocking(
        decaying_poisson, tie_blocking, n_max=64
    )
    assert n_star == n_tie


def test_target_achievable_only_at_n_max():
    # Feasibility is probed at n_max first; a target met there and
    # nowhere below must come back as exactly n_max.
    from repro.workloads.sweeps import _solution

    n_max = 12
    at_top = _solution(
        SwitchDimensions.square(n_max), tuple(decaying_poisson(n_max))
    ).blocking(0)
    below_top = _solution(
        SwitchDimensions.square(n_max - 1),
        tuple(decaying_poisson(n_max - 1)),
    ).blocking(0)
    target = 0.5 * (at_top + below_top)
    assert (
        find_size_for_blocking(decaying_poisson, target, n_max=n_max)
        == n_max
    )


def test_loose_target_returns_n_min():
    assert find_size_for_blocking(decaying_poisson, 0.5, n_max=32) == 1
    assert (
        find_size_for_blocking(decaying_poisson, 0.5, n_min=3, n_max=32)
        == 3
    )


def test_infeasible_target_raises():
    # Per-pair load fixed at 0.3: growing the switch cannot push
    # blocking to absurd depths within a tiny n_max.
    heavy = TrafficClass.poisson(0.9)
    with pytest.raises(ConfigurationError):
        find_size_for_blocking(lambda n: [heavy], 1e-12, n_max=2)


def test_invalid_target_rejected():
    for bad in (0.0, 1.0, -0.1, 1.5):
        with pytest.raises(ConfigurationError):
            find_size_for_blocking(lambda n: [POISSON], bad)


def test_find_load_brackets_target():
    dims = SwitchDimensions.square(4)
    target = 1e-3

    def classes_for_load(x: float):
        return [TrafficClass.poisson(x)]

    load = find_load_for_blocking(dims, classes_for_load, target)
    low = float(
        solve_exact(dims, tuple(classes_for_load(load))).blocking(0)
    )
    assert low <= target
    bumped = load + 2e-10 * max(1.0, load)
    high = float(
        solve_exact(dims, tuple(classes_for_load(bumped))).blocking(0)
    )
    # One tolerance step above the returned load the target is violated
    # (the bisection maintained blocking(hi) > target down to tol).
    assert high > target or high == pytest.approx(target, rel=1e-9)


def test_find_load_zero_load_infeasible_raises():
    dims = SwitchDimensions.square(2)

    def always_hot(x: float):
        # Even at "zero load" this mix blocks: a class too wide to fit.
        return [TrafficClass(alpha=max(x, 1e-9), beta=0.0, mu=1.0, a=3)]

    with pytest.raises(ConfigurationError):
        find_load_for_blocking(dims, always_hot, 1e-6)
