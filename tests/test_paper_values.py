"""Quantitative anchors against the paper's printed numbers.

Table 2 is the only place the paper prints raw numbers.  Our exact
implementation (verified five independent ways, see
``test_cross_validation.py``) reproduces:

* every quantity that does not involve the bursty class's
  state-dependence — blocking at ``N = 1, 2``, all ``W(N)``, all
  ``dW/d rho_1`` — to the paper's printed precision;
* the bursty-affected blocking values within a few percent.  The
  residual is systematic: the paper's own printed eq. 19 is
  inconsistent with its eq. 17 (the recursion drops a factor), and the
  printed bursty columns behave exactly like a first-order-in-beta
  computation scaled by ``(N-2)/(2(N-1))`` — zero burstiness effect at
  ``N = 2`` (visible in the table: both beta~ values print the same
  blocking there) and half the true effect asymptotically.  EXPERIMENTS.md
  quantifies this row by row.
"""

from __future__ import annotations

import pytest

from repro.workloads import TABLE2_PAPER, table2_rows

ALL_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@pytest.fixture(scope="module")
def computed():
    return {
        s: {row["N"]: row for row in table2_rows(s, sizes=ALL_SIZES)}
        for s in (0, 1, 2)
    }


class TestExactColumns:
    """Columns our exact model must reproduce to printed precision."""

    @pytest.mark.parametrize("set_index", [0, 1, 2])
    def test_blocking_at_n1(self, computed, set_index):
        row = computed[set_index][1]
        assert row["blocking"] == pytest.approx(
            row["paper_blocking"], rel=1e-5
        )

    @pytest.mark.parametrize("set_index", [0, 1, 2])
    def test_revenue_at_all_sizes(self, computed, set_index):
        """W(N) is dominated by the Poisson class (w2 = 1e-4): printed
        and computed agree to ~1e-3 relative except the most bursty
        corner (set 1, N = 256: 1.4%, driven by the documented eq. 19
        defect in the paper's own numbers)."""
        for n, row in computed[set_index].items():
            assert row["revenue"] == pytest.approx(
                row["paper_revenue"], rel=2e-2
            ), f"W mismatch at N={n}, set {set_index}"
            if n <= 64:
                assert row["revenue"] == pytest.approx(
                    row["paper_revenue"], rel=1e-3
                )

    @pytest.mark.parametrize("set_index", [0, 1, 2])
    def test_gradient_rho1_at_all_sizes(self, computed, set_index):
        for n, row in computed[set_index].items():
            assert row["dW_drho1"] == pytest.approx(
                row["paper_dW_drho1"], rel=1.5e-2
            ), f"dW/drho1 mismatch at N={n}, set {set_index}"

    def test_blocking_small_n_all_sets(self, computed):
        """Up to N = 8 the bursty perturbation is below 1% relative."""
        for set_index in (0, 1, 2):
            for n in (1, 2, 4, 8):
                row = computed[set_index][n]
                assert row["blocking"] == pytest.approx(
                    row["paper_blocking"], rel=1e-2
                )


class TestBurstyColumns:
    """Columns affected by the paper's eq. 17/19 inconsistency."""

    @pytest.mark.parametrize("set_index", [0, 1, 2])
    def test_blocking_within_ten_percent_up_to_n64(self, computed, set_index):
        """The documented divergence grows with N and beta~; up to
        N = 64 it stays below 10% for every parameter set.  Beyond
        that the exact Pascal amplification (superlinear in beta) pulls
        away from the paper's first-order numbers — see EXPERIMENTS.md."""
        for n in (1, 2, 4, 8, 16, 32, 64):
            row = computed[set_index][n]
            assert row["blocking"] == pytest.approx(
                row["paper_blocking"], rel=0.10
            ), f"blocking far off at N={n}, set {set_index}"

    @pytest.mark.parametrize("set_index", [0, 1, 2])
    def test_exact_blocking_exceeds_printed(self, computed, set_index):
        """The paper's defect *under*-counts the bursty load, so the
        exact blocking is consistently >= the printed one (N >= 4)."""
        for n in (4, 8, 16, 32, 64, 128, 256):
            row = computed[set_index][n]
            assert row["blocking"] >= row["paper_blocking"] - 1e-9

    @pytest.mark.parametrize("set_index", [0, 1, 2])
    def test_burstiness_gradient_sign_matches_for_n_ge_4(
        self, computed, set_index
    ):
        for n in (4, 8, 16, 32, 64, 128, 256):
            row = computed[set_index][n]
            assert row["dW_dburstiness2"] < 0
            assert row["paper_dW_dburstiness2"] < 0

    @pytest.mark.parametrize("set_index", [0, 1, 2])
    def test_burstiness_gradient_magnitude_grows_with_n(
        self, computed, set_index
    ):
        previous = 0.0
        for n in (4, 8, 16, 32, 64, 128, 256):
            value = abs(computed[set_index][n]["dW_dburstiness2"])
            assert value > previous
            previous = value

    def test_known_discrepancy_factor(self, computed):
        """The printed bursty blocking increment over the Poisson
        baseline matches the exact first-order increment scaled by
        (N-2)/(2(N-1)) — the signature of the eq. 19 defect.  Checked
        at N = 64 for both beta~ levels."""
        from repro.core.convolution import solve_convolution
        from repro.core.state import SwitchDimensions
        from repro.core.traffic import TrafficClass

        n = 64
        dims = SwitchDimensions.square(n)

        def blocking(beta_tilde):
            classes = [
                TrafficClass.from_aggregate(0.0012, 0.0, n2=n),
                TrafficClass.from_aggregate(0.0012, beta_tilde, n2=n),
            ]
            return solve_convolution(dims, classes).blocking(0)

        base = blocking(0.0)
        eps = 1e-7
        slope = (blocking(eps) - base) / eps
        factor = (n - 2) / (2 * (n - 1))
        for set_index, beta_tilde in ((0, 0.0012), (1, 0.0036)):
            printed = TABLE2_PAPER[set_index][n][2]
            predicted = base + slope * beta_tilde * factor
            assert printed == pytest.approx(predicted, rel=2e-3)
