"""Client-side resilience: retries, backoff, retry_after, hedging.

The retry loop is deterministic (no jitter), so the unit tests pin the
exact sleep sequence: each delay is the *longer* of the server's
``retry_after`` hint and the exponential backoff curve.  504s are
final by contract — the budget is spent, a retry cannot un-spend it.
Hedging is exercised both with a monkeypatched transport (deterministic
winner) and end to end against a fault-injected daemon.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

pytestmark = pytest.mark.service

from repro.api import SolveRequest, solve
from repro.core.traffic import TrafficClass
from repro.engine import (
    BatchSolver,
    EngineConfig,
    ServiceFaultInjector,
    ServiceFaultPlan,
)
from repro.exceptions import ConfigurationError
from repro.service import (
    AdmissionRejectedError,
    BrownoutConfig,
    DeadlineExceededError,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    start_in_thread,
)


def point_request(n: int = 4, rate: float = 0.01) -> SolveRequest:
    return SolveRequest.square(n, [TrafficClass.poisson(rate)])


def rejected(retry_after: float) -> tuple[int, dict]:
    return 503, {"error": {
        "kind": "admission_rejected",
        "message": "gate full",
        "retry_after": retry_after,
    }}


OK_ENVELOPE = (200, {"id": "r-1", "result": {"ok": True}})


def make_client(policy: RetryPolicy, script) -> tuple[ServiceClient, list]:
    """A client whose transport replays ``script`` and records sleeps."""
    sleeps: list[float] = []
    client = ServiceClient(
        "127.0.0.1", 1, retry=policy, sleep=sleeps.append
    )
    replies = iter(script)

    def fake_roundtrip(method, path, payload=None, address=None):
        reply = next(replies)
        if isinstance(reply, Exception):
            raise reply
        return reply

    client._roundtrip = fake_roundtrip
    return client, sleeps


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------


def test_backoff_curve_doubles_and_caps():
    policy = RetryPolicy(max_retries=5, backoff_base=0.1, backoff_cap=0.5)
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.2)
    assert policy.backoff(3) == pytest.approx(0.4)
    assert policy.backoff(4) == pytest.approx(0.5)  # capped
    assert policy.backoff(10) == pytest.approx(0.5)


@pytest.mark.parametrize("bad", [
    dict(max_retries=-1),
    dict(backoff_base=-0.1),
    dict(backoff_cap=-1.0),
    dict(hedge_after=0.0),
    dict(hedge_after=-1.0),
])
def test_retry_policy_rejects_bad_knobs(bad):
    with pytest.raises(ConfigurationError):
        RetryPolicy(**bad)


# ----------------------------------------------------------------------
# Retry loop (monkeypatched transport)
# ----------------------------------------------------------------------


def test_default_policy_does_not_retry():
    client, sleeps = make_client(RetryPolicy(), [rejected(0.5)])
    with pytest.raises(AdmissionRejectedError):
        client.solve_raw(point_request())
    assert client.retries == 0
    assert sleeps == []


def test_503_retry_honors_server_hint_when_longer():
    client, sleeps = make_client(
        RetryPolicy(max_retries=3, backoff_base=0.05),
        [rejected(0.7), rejected(0.7), OK_ENVELOPE],
    )
    envelope = client.solve_raw(point_request())
    assert envelope["result"] == {"ok": True}
    assert client.retries == 2
    # hint (0.7) > backoff (0.05, 0.1) on both sleeps
    assert sleeps == [pytest.approx(0.7), pytest.approx(0.7)]


def test_503_retry_uses_backoff_when_hint_is_shorter():
    client, sleeps = make_client(
        RetryPolicy(max_retries=3, backoff_base=0.2),
        [rejected(0.01), rejected(0.01), OK_ENVELOPE],
    )
    client.solve_raw(point_request())
    assert sleeps == [pytest.approx(0.2), pytest.approx(0.4)]


def test_retries_exhaust_and_reraise():
    client, sleeps = make_client(
        RetryPolicy(max_retries=2),
        [rejected(0.1), rejected(0.1), rejected(0.1)],
    )
    with pytest.raises(AdmissionRejectedError):
        client.solve_raw(point_request())
    assert client.retries == 2
    assert len(sleeps) == 2


def test_transport_errors_retry_with_backoff():
    client, sleeps = make_client(
        RetryPolicy(max_retries=2, backoff_base=0.03),
        [ConnectionResetError("boom"), OK_ENVELOPE],
    )
    envelope = client.solve_raw(point_request())
    assert envelope["result"] == {"ok": True}
    assert client.retries == 1
    assert sleeps == [pytest.approx(0.03)]


def test_504_is_never_retried():
    calls = {"n": 0}
    client = ServiceClient(
        "127.0.0.1", 1,
        retry=RetryPolicy(max_retries=5), sleep=lambda _s: None,
    )

    def fake_roundtrip(method, path, payload=None, address=None):
        calls["n"] += 1
        return 504, {"error": {
            "kind": "deadline_exceeded", "phase": "wait",
            "message": "budget expired", "deadline_ms": 50.0,
        }}

    client._roundtrip = fake_roundtrip
    with pytest.raises(DeadlineExceededError) as excinfo:
        client.solve_raw(point_request(), deadline_ms=50)
    assert excinfo.value.phase == "wait"
    assert calls["n"] == 1  # the budget is spent; retrying is senseless
    assert client.retries == 0


# ----------------------------------------------------------------------
# Hedging (monkeypatched transport)
# ----------------------------------------------------------------------


def test_hedge_fires_after_threshold_and_second_wins():
    release_first = threading.Event()
    calls = {"n": 0}
    lock = threading.Lock()
    client = ServiceClient(
        "127.0.0.1", 1,
        retry=RetryPolicy(hedge_after=0.05),
    )

    def fake_roundtrip(method, path, payload=None, address=None):
        with lock:
            calls["n"] += 1
            mine = calls["n"]
        if mine == 1:
            release_first.wait(5.0)  # the stuck primary
        return OK_ENVELOPE

    client._roundtrip = fake_roundtrip
    try:
        envelope = client.solve_raw(point_request())
        assert envelope["result"] == {"ok": True}
        assert client.hedges == 1
        assert client.hedges_won == 1
        # Three transports: the stuck primary, the one-time /cluster
        # probe (looking for a different shard to hedge at), and the
        # hedged duplicate itself.
        assert calls["n"] == 3
    finally:
        release_first.set()


def test_fast_primary_never_hedges():
    client = ServiceClient(
        "127.0.0.1", 1, retry=RetryPolicy(hedge_after=5.0),
    )
    client._roundtrip = (
        lambda method, path, payload=None, address=None: OK_ENVELOPE
    )
    client.solve_raw(point_request())
    assert client.hedges == 0
    assert client.hedges_won == 0


# ----------------------------------------------------------------------
# End to end against a fault-injected daemon
# ----------------------------------------------------------------------


def test_retries_ride_out_a_saturated_gate():
    config = ServiceConfig(
        port=0, batch_window=0.005, gate_capacity=1, min_hold=0.2,
        brownout=BrownoutConfig(enabled=False),
    )
    with start_in_thread(
        config, engine=BatchSolver(EngineConfig())
    ) as handle:
        blocker = ServiceClient(*handle.address)
        patient = ServiceClient(
            *handle.address,
            retry=RetryPolicy(max_retries=10, backoff_base=0.05),
        )
        request = point_request(6)
        local = solve(request)
        with ThreadPoolExecutor(max_workers=1) as pool:
            occupant = pool.submit(blocker.solve, point_request(5))
            time.sleep(0.05)  # let it take the only token
            assert patient.solve(request) == local
            occupant.result(10.0)
        assert patient.retries >= 1


def test_hedging_against_a_delayed_engine():
    injector = ServiceFaultInjector(
        ServiceFaultPlan.from_seed(
            4, engine_delays=1, flushes=1, delay_duration=0.4
        )
    )
    config = ServiceConfig(
        port=0, batch_window=0.005,
        brownout=BrownoutConfig(enabled=False),
    )
    with start_in_thread(
        config, engine=BatchSolver(EngineConfig())
    ) as handle:
        service = handle.service
        service.batcher._runner = injector.wrap_runner(service._run_batch)
        client = ServiceClient(
            *handle.address,
            retry=RetryPolicy(hedge_after=0.1),
        )
        request = point_request(7)
        remote = client.solve(request)
        assert remote == solve(request)
        # The delayed first flush forced the hedge; the duplicate
        # coalesced onto the same in-flight solve (single-flight), so
        # whichever copy answers first carries the identical bytes.
        assert client.hedges == 1
        deadline = time.monotonic() + 5.0
        while service.gate.in_use and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.gate.in_use == 0
