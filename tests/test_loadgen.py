"""The declarative load harness: specs, report math, live runs.

The loadgen is measurement equipment, so its arithmetic is pinned by
hand-computed cases (blocking ratios, Erlang-B fleet prediction,
latency percentiles) and its end-to-end path is smoked against both a
single daemon (replies land in the ``UNSHARDED`` bucket) and a real
two-worker cluster (per-shard tallies from ``X-Shard`` headers,
client-side direct sharding).
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.service  # spawns generator processes

from repro.baselines.erlang import erlang_b
from repro.exceptions import ConfigurationError
from repro.loadgen import (
    DEFAULT_CLASSES,
    LoadReport,
    LoadSpec,
    UNSHARDED,
    availability_weighted_blocking,
    expected_fleet_blocking,
    run_load,
)
from repro.service import (
    ClusterConfig,
    ServiceConfig,
    start_cluster_in_thread,
    start_in_thread,
)

QUICK = dict(
    generators=1, connections=8, duration=1.0, warmup=1, timeout=10.0
)


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------


def test_spec_round_trips_through_toml(tmp_path):
    spec = LoadSpec(
        generators=3, connections=32, duration=2.5, mode="open",
        rate=120.0, burst_mean=2.5, sizes=(4, 8), method="exact",
        deadline_ms=250.0, shard_direct=False,
    )
    path = tmp_path / "load.toml"
    path.write_text(spec.to_toml())
    assert LoadSpec.from_toml(path) == spec


@pytest.mark.parametrize(
    "bad",
    [
        {"generators": 0},
        {"connections": 0},
        {"duration": 0.0},
        {"mode": "bursty"},
        {"mode": "open", "rate": 0.0},
        {"burst_mean": 0.5},
        {"sizes": ()},
        {"classes": ()},
        {"warmup": -1},
    ],
)
def test_bad_specs_raise(bad):
    with pytest.raises(ConfigurationError):
        LoadSpec(**bad)


def test_spec_rejects_unknown_keys():
    with pytest.raises(ConfigurationError):
        LoadSpec.from_dict({"generatorz": 2})


def test_request_entries_carry_canonical_keys():
    spec = LoadSpec(sizes=(4, 6), classes=tuple(DEFAULT_CLASSES))
    entries = spec.request_entries()
    assert len(entries) == 2
    for record, key in entries:
        assert isinstance(record, dict)
        assert key  # the client-side sharding routes on this
    assert len({key for _, key in entries}) == 2


# ----------------------------------------------------------------------
# Report arithmetic
# ----------------------------------------------------------------------


def test_report_ratios_and_percentiles():
    report = LoadReport(
        spec=LoadSpec(), offered=100, completed=60, rejected=30,
        deadline_exceeded=10, duration=2.0,
        latencies=sorted([0.010] * 50 + [0.020] * 10),
        per_shard={
            0: {"ok": 40, "rejected": 10},
            1: {"ok": 20, "rejected": 20},
        },
    )
    assert report.throughput_rps == pytest.approx(30.0)
    assert report.blocking_measured == pytest.approx(0.3)
    assert report.shard_blocking(0) == pytest.approx(0.2)
    assert report.shard_blocking(1) == pytest.approx(0.5)
    assert report.latency_ms(0.50) == pytest.approx(10.0)
    assert report.latency_ms(0.99) == pytest.approx(20.0)
    record = report.to_dict()
    assert record["throughput_rps"] == pytest.approx(30.0)
    assert record["per_shard"]["1"]["rejected"] == 20


def test_expected_fleet_blocking_weights_by_offered_load():
    report = LoadReport(
        spec=LoadSpec(), duration=10.0,
        per_shard={
            0: {"ok": 80, "rejected": 20},   # 10/s offered
            1: {"ok": 160, "rejected": 40},  # 20/s offered
        },
    )
    hold = 0.1
    want = (
        100 * erlang_b(2, 10.0 * hold) + 200 * erlang_b(2, 20.0 * hold)
    ) / 300
    assert expected_fleet_blocking(report, servers=2, hold_s=hold) \
        == pytest.approx(want)


def test_expected_fleet_blocking_empty_report_is_zero():
    assert expected_fleet_blocking(
        LoadReport(spec=LoadSpec()), servers=2, hold_s=0.1
    ) == 0.0


def test_availability_weighted_blocking_concentrates_with_failover():
    # 1 of 4 dead, failover on: the whole stream lands on 3 survivors.
    want = erlang_b(2, (120.0 / 3) * 0.05)
    assert availability_weighted_blocking(
        4, 1, 2, 120.0, 0.05
    ) == pytest.approx(want)
    # No failover: the dead quarter is lost outright, survivors keep
    # their original share.
    survivor = erlang_b(2, (120.0 / 4) * 0.05)
    assert availability_weighted_blocking(
        4, 1, 2, 120.0, 0.05, failover=False
    ) == pytest.approx(0.25 + 0.75 * survivor)
    # Degenerate cases.
    assert availability_weighted_blocking(4, 0, 2, 120.0, 0.05) \
        == pytest.approx(erlang_b(2, (120.0 / 4) * 0.05))
    assert availability_weighted_blocking(4, 4, 2, 120.0, 0.05) == 1.0
    with pytest.raises(ConfigurationError):
        availability_weighted_blocking(4, 5, 2, 120.0, 0.05)
    with pytest.raises(ConfigurationError):
        availability_weighted_blocking(0, 0, 2, 120.0, 0.05)


def test_failover_blocking_exceeds_healthy_but_beats_no_failover():
    healthy = availability_weighted_blocking(4, 0, 2, 120.0, 0.05)
    degraded = availability_weighted_blocking(4, 1, 2, 120.0, 0.05)
    lossy = availability_weighted_blocking(
        4, 1, 2, 120.0, 0.05, failover=False
    )
    assert healthy < degraded < lossy


# ----------------------------------------------------------------------
# Live runs
# ----------------------------------------------------------------------


def test_closed_loop_against_a_single_daemon():
    with start_in_thread(ServiceConfig(port=0)) as handle:
        spec = LoadSpec(mode="closed", **QUICK)
        report = run_load(spec, *handle.address)
    assert report.errors == 0
    assert report.completed > 0
    assert report.offered >= report.completed
    # No cluster: every reply lands in the unsharded bucket (the
    # shard_direct probe falls back to the given address).
    assert set(report.per_shard) == {UNSHARDED}
    assert report.latencies == sorted(report.latencies)


def test_open_loop_offers_bursty_arrivals():
    with start_in_thread(ServiceConfig(port=0)) as handle:
        spec = LoadSpec(
            mode="open", rate=150.0, burst_mean=2.0, **QUICK
        )
        report = run_load(spec, *handle.address)
    assert report.errors == 0
    assert report.offered > 0
    assert report.completed + report.rejected \
        + report.deadline_exceeded + report.other <= report.offered


def test_direct_sharding_against_a_cluster():
    config = ServiceConfig(
        port=0, cluster=ClusterConfig(workers=2)
    )
    with start_cluster_in_thread(config) as handle:
        spec = LoadSpec(mode="closed", **QUICK)
        report = run_load(spec, *handle.address)
    assert report.errors == 0
    assert report.completed > 0
    # Direct sharding: replies come from the workers themselves, so
    # every bucket is a real shard index (nothing unsharded).
    assert report.per_shard
    assert UNSHARDED not in report.per_shard
    assert set(report.per_shard) <= {0, 1}


def test_transport_failures_are_tallied_not_raised():
    # Nothing listens on this port: every round-trip fails, the
    # generator ships its counters anyway, and errors are tallied
    # rather than raised.
    spec = LoadSpec(
        generators=1, connections=2, duration=0.5, warmup=0,
        timeout=0.5, shard_direct=False,
    )
    report = run_load(spec, "127.0.0.1", 9)
    assert report.completed == 0
    assert report.errors > 0
    # Taxonomy: a silent port refuses the TCP connect, so every error
    # is classified connect-refused and the classes sum to the total.
    assert report.connect_refused == report.errors
    assert report.read_errors == 0
    assert report.connect_refused + report.read_errors == report.errors
    # No reply ever carried X-Shard and no route table existed, so the
    # failures land in the UNSHARDED bucket.
    bucket = report.per_shard[UNSHARDED]
    assert bucket["connect_refused"] == report.connect_refused
    record = report.to_dict()
    assert record["connect_refused"] == report.connect_refused
    assert record["read_errors"] == 0
