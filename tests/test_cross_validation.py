"""Integration: every solution path agrees on every measure.

The library computes each performance number at least five independent
ways — brute-force product form (the paper's eq. 2-3 verbatim),
Algorithm 1 in three numeric modes, Algorithm 2, exact rationals, a raw
CTMC solve, and (statistically) discrete-event simulation.  This module
drives them all against shared configurations.
"""

from __future__ import annotations

import pytest

from repro.core.convolution import solve_convolution
from repro.core.exact import solve_exact
from repro.core.mva import solve_mva
from repro.core.productform import solve_brute_force
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.ctmc import solve_ctmc
from repro.sim import run_replications

CONFIGS = [
    pytest.param(
        SwitchDimensions(4, 4),
        [TrafficClass.poisson(0.3, name="p")],
        id="single-poisson",
    ),
    pytest.param(
        SwitchDimensions(3, 6),
        [
            TrafficClass.poisson(0.2, weight=2.0, name="p"),
            TrafficClass(alpha=0.08, beta=0.25, weight=0.5, name="pascal"),
        ],
        id="rect-poisson+pascal",
    ),
    pytest.param(
        SwitchDimensions(6, 5),
        [
            TrafficClass.bernoulli(3, 0.1, name="bern"),
            TrafficClass.poisson(0.05, a=2, name="wide"),
        ],
        id="bernoulli+multirate",
    ),
    pytest.param(
        SwitchDimensions(5, 5),
        [
            TrafficClass.poisson(0.1, name="p"),
            TrafficClass(alpha=0.02, beta=0.4, a=2, mu=2.0, name="pk2"),
            TrafficClass.bernoulli(4, 0.06, name="bern"),
        ],
        id="three-kinds",
    ),
]


@pytest.mark.parametrize("dims,classes", CONFIGS)
class TestAnalyticalAgreement:
    def test_five_way_agreement(self, dims, classes):
        brute = solve_brute_force(dims, classes)
        ctmc = solve_ctmc(dims, classes)
        solutions = {
            "conv-log": solve_convolution(dims, classes, mode="log"),
            "conv-scaled": solve_convolution(dims, classes, mode="scaled"),
            "conv-float": solve_convolution(dims, classes, mode="float"),
            "mva": solve_mva(dims, classes),
            "exact": solve_exact(dims, classes),
        }
        for r in range(len(classes)):
            expected_b = brute.non_blocking_probability(r)
            expected_e = brute.concurrency(r)
            assert ctmc.non_blocking_probability(r) == pytest.approx(
                expected_b, rel=1e-9
            )
            assert ctmc.concurrency(r) == pytest.approx(expected_e, rel=1e-9)
            for name, solution in solutions.items():
                assert solution.non_blocking(r) == pytest.approx(
                    expected_b, rel=1e-9
                ), f"{name} B_r mismatch"
                assert solution.concurrency(r) == pytest.approx(
                    expected_e, rel=1e-9
                ), f"{name} E_r mismatch"

    def test_revenue_agreement(self, dims, classes):
        brute = solve_brute_force(dims, classes)
        for solver in (solve_convolution, solve_mva, solve_exact):
            assert solver(dims, classes).revenue() == pytest.approx(
                brute.revenue(), rel=1e-9
            )


@pytest.mark.slow
class TestSimulationAgreement:
    @pytest.mark.parametrize(
        "dims,classes",
        [
            (
                SwitchDimensions(3, 3),
                [TrafficClass.poisson(0.25, name="p")],
            ),
            (
                SwitchDimensions(4, 4),
                [
                    TrafficClass.poisson(0.1, name="p"),
                    TrafficClass(alpha=0.06, beta=0.3, name="pascal"),
                ],
            ),
        ],
        ids=["poisson", "mixed"],
    )
    def test_simulation_within_tolerance(self, dims, classes):
        solution = solve_convolution(dims, classes)
        summary = run_replications(
            dims, classes, horizon=4000.0, warmup=400.0,
            replications=5, seed=101,
        )
        for r in range(len(classes)):
            sim_acc = summary.classes[r].acceptance.estimate
            assert sim_acc == pytest.approx(
                solution.call_acceptance(r), rel=0.05
            )
            sim_e = summary.classes[r].concurrency.estimate
            assert sim_e == pytest.approx(
                solution.concurrency(r), rel=0.08
            )


class TestPaperTypoResolution:
    """Regression lock on the E_r prefactor question (DESIGN.md §2).

    The paper's Section 3 prints binomial coefficients in the ``E_r``
    formula; the transition structure requires falling factorials.  For
    ``a_r >= 2`` the two differ by ``(a!)^2`` — this test pins the
    correct choice against the definitional state sum forever.
    """

    def test_permutation_prefactor_for_multirate_class(self):
        dims = SwitchDimensions(4, 5)
        classes = [TrafficClass.poisson(0.07, a=2, name="wide")]
        brute = solve_brute_force(dims, classes)
        conv = solve_convolution(dims, classes)
        # definitional: E = sum k pi(k)
        assert conv.concurrency(0) == pytest.approx(
            brute.concurrency(0), rel=1e-12
        )
        # with the binomial prefactor the value would be 4x smaller:
        from repro.core.state import permutation

        b = conv.non_blocking(0)
        perm_form = classes[0].rho * permutation(4, 2) * permutation(5, 2) * b
        assert conv.concurrency(0) == pytest.approx(perm_form, rel=1e-12)
        import math

        binom_form = classes[0].rho * math.comb(4, 2) * math.comb(5, 2) * b
        assert abs(conv.concurrency(0) - binom_form) > 0.1 * abs(
            conv.concurrency(0)
        )
