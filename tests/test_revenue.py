"""Tests for the revenue-oriented analysis (paper Section 4)."""

from __future__ import annotations

import pytest

from repro.core.convolution import solve_convolution
from repro.core.mva import solve_mva
from repro.core.revenue import (
    gradient_burstiness,
    gradient_rho,
    gradient_rho_closed_form,
    marginal_value,
    revenue_report,
    shadow_cost,
)
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError


class TestShadowCost:
    def test_matches_two_direct_solves(self, small_dims, poisson_only):
        solution = solve_convolution(small_dims, poisson_only)
        for r, cls in enumerate(poisson_only):
            reduced = small_dims.shrink(cls.a)
            direct = (
                solution.revenue()
                - solve_convolution(reduced, poisson_only).revenue()
            )
            assert shadow_cost(solution, r) == pytest.approx(
                direct, rel=1e-10
            )

    def test_marginal_value_definition(self, small_dims, poisson_only):
        solution = solve_convolution(small_dims, poisson_only)
        for r, cls in enumerate(poisson_only):
            assert marginal_value(solution, r) == pytest.approx(
                cls.weight - shadow_cost(solution, r)
            )


class TestClosedFormGradient:
    @pytest.mark.parametrize("r", [0, 1])
    def test_matches_central_difference(self, small_dims, poisson_only, r):
        solution = solve_convolution(small_dims, poisson_only)
        closed = gradient_rho_closed_form(solution, r)
        numeric = gradient_rho(
            small_dims, poisson_only, r, step=1e-8, scheme="central"
        )
        assert closed == pytest.approx(numeric, rel=1e-5)

    def test_rejects_bursty_mix(self, small_dims, mixed_classes):
        solution = solve_convolution(small_dims, mixed_classes)
        with pytest.raises(ConfigurationError):
            gradient_rho_closed_form(solution, 0)

    def test_paper_interpretation_sign(self):
        """If w_r exceeds the shadow cost, more load helps; the
        closed form's sign must follow the marginal value."""
        dims = SwitchDimensions(6, 6)
        classes = [
            TrafficClass.poisson(0.3, weight=10.0, name="valuable"),
            TrafficClass.poisson(0.3, weight=0.001, name="cheap"),
        ]
        solution = solve_convolution(dims, classes)
        assert marginal_value(solution, 0) > 0
        assert gradient_rho_closed_form(solution, 0) > 0
        # the cheap class displaces valuable traffic: negative gradient
        assert marginal_value(solution, 1) < 0
        assert gradient_rho_closed_form(solution, 1) < 0


class TestNumericalGradients:
    def test_forward_and_central_agree(self, small_dims, mixed_classes):
        for r in range(len(mixed_classes)):
            fwd = gradient_rho(small_dims, mixed_classes, r, step=1e-7)
            ctr = gradient_rho(
                small_dims, mixed_classes, r, step=1e-7, scheme="central"
            )
            assert fwd == pytest.approx(ctr, rel=1e-3, abs=1e-9)

    def test_burstiness_gradient_scheme_agreement(self, small_dims):
        classes = [
            TrafficClass.poisson(0.1, weight=1.0),
            TrafficClass(alpha=0.1, beta=0.2, weight=0.01),
        ]
        fwd = gradient_burstiness(small_dims, classes, 1, step=1e-7)
        ctr = gradient_burstiness(
            small_dims, classes, 1, step=1e-7, scheme="central"
        )
        assert fwd == pytest.approx(ctr, rel=1e-3, abs=1e-9)

    def test_gradient_via_brute_force_solver(self, small_dims):
        """FD gradients are solver-agnostic."""
        classes = [
            TrafficClass.poisson(0.15, weight=1.0),
            TrafficClass(alpha=0.05, beta=0.25, weight=0.1),
        ]
        conv = gradient_burstiness(small_dims, classes, 1, step=1e-6)
        mva = gradient_burstiness(
            small_dims, classes, 1, step=1e-6, solver=solve_mva
        )
        assert conv == pytest.approx(mva, rel=1e-6)

    def test_unknown_scheme_rejected(self, small_dims, mixed_classes):
        with pytest.raises(ConfigurationError):
            gradient_rho(small_dims, mixed_classes, 0, scheme="magic")

    def test_increasing_burstiness_of_low_value_class_loses_revenue(self):
        """Table 2's central finding, at a representative size."""
        n = 32
        dims = SwitchDimensions.square(n)
        classes = [
            TrafficClass.from_aggregate(
                0.0012, 0.0, n2=n, weight=1.0, name="poisson"
            ),
            TrafficClass.from_aggregate(
                0.0012, 0.0012, n2=n, weight=0.0001, name="bursty"
            ),
        ]
        grad = gradient_burstiness(dims, classes, 1, step=1e-9)
        assert grad < 0


class TestRevenueReport:
    def test_structure(self, small_dims, mixed_classes):
        report = revenue_report(small_dims, mixed_classes)
        assert report["dims"] == (small_dims.n1, small_dims.n2)
        assert len(report["classes"]) == len(mixed_classes)
        for entry in report["classes"]:
            assert {"name", "kind", "blocking", "shadow_cost",
                    "marginal_value", "dW_drho"} <= set(entry)

    def test_burstiness_gradient_only_for_bursty(self, small_dims, mixed_classes):
        report = revenue_report(small_dims, mixed_classes)
        for entry, cls in zip(report["classes"], mixed_classes):
            if cls.is_poisson:
                assert entry["dW_dburstiness"] is None
            else:
                assert entry["dW_dburstiness"] is not None

    def test_revenue_consistency(self, small_dims, mixed_classes):
        report = revenue_report(small_dims, mixed_classes)
        solution = solve_convolution(small_dims, mixed_classes)
        assert report["revenue"] == pytest.approx(solution.revenue())
