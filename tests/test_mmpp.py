"""Tests for MMPP traffic and the BPP-approximation study."""

from __future__ import annotations

import pytest

from repro.core.convolution import solve_convolution
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass, bpp_peakedness
from repro.exceptions import ConfigurationError
from repro.sim.mmpp import (
    Mmpp2,
    MmppCrossbarSimulator,
    bpp_surrogate_class,
    fit_bpp_to_mmpp,
    infinite_server_moments,
)
from repro.sim.stats import t_confidence_interval


class TestMmpp2:
    def test_stationary_phase_probability(self):
        mm = Mmpp2(1.0, 2.0, r12=0.5, r21=1.5)
        assert mm.p1 == pytest.approx(0.75)

    def test_mean_rate(self):
        mm = Mmpp2(4.0, 1.0, r12=1.0, r21=1.0)
        assert mm.mean_rate == pytest.approx(2.5)

    def test_scaled(self):
        mm = Mmpp2(4.0, 1.0, 1.0, 1.0).scaled(2.0)
        assert mm.rate1 == 8.0 and mm.rate2 == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Mmpp2(-1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            Mmpp2(1.0, 1.0, 0.0, 1.0)


class TestInfiniteServerMoments:
    def test_degenerate_mmpp_is_poisson(self):
        """Equal phase rates: plain Poisson, Z = 1, mean = rate/mu."""
        mm = Mmpp2(2.0, 2.0, 1.0, 1.0)
        mean, z = infinite_server_moments(mm, mu=1.0)
        assert mean == pytest.approx(2.0, rel=1e-9)
        assert z == pytest.approx(1.0, rel=1e-9)

    def test_bursty_mmpp_is_peaky(self):
        mm = Mmpp2(4.0, 0.5, 0.5, 0.5)
        _, z = infinite_server_moments(mm)
        assert z > 1.2

    def test_slower_modulation_is_peakier(self):
        fast = Mmpp2(4.0, 0.5, 5.0, 5.0)
        slow = Mmpp2(4.0, 0.5, 0.05, 0.05)
        assert (
            infinite_server_moments(slow)[1]
            > infinite_server_moments(fast)[1]
        )

    def test_mean_independent_of_modulation_speed(self):
        fast = Mmpp2(4.0, 0.5, 5.0, 5.0)
        slow = Mmpp2(4.0, 0.5, 0.05, 0.05)
        assert infinite_server_moments(fast)[0] == pytest.approx(
            infinite_server_moments(slow)[0], rel=1e-6
        )

    def test_truncation_insensitive(self):
        mm = Mmpp2(3.0, 0.5, 0.5, 0.5)
        base = infinite_server_moments(mm)
        wide = infinite_server_moments(mm, truncation=80)
        assert base[0] == pytest.approx(wide[0], rel=1e-9)
        assert base[1] == pytest.approx(wide[1], rel=1e-9)


class TestBppFit:
    def test_fit_matches_moments(self):
        mm = Mmpp2(3.0, 0.5, 1.0, 1.0)
        mean, z = infinite_server_moments(mm)
        alpha, beta = fit_bpp_to_mmpp(mm)
        assert alpha / (1.0 - beta) == pytest.approx(mean, rel=1e-9)
        assert bpp_peakedness(beta, 1.0) == pytest.approx(z, rel=1e-9)

    def test_surrogate_class_spreads_per_pair(self):
        dims = SwitchDimensions(4, 6)
        mm = Mmpp2(3.0, 0.5, 1.0, 1.0)
        cls = bpp_surrogate_class(dims, mm)
        alpha_total, _ = fit_bpp_to_mmpp(mm)
        assert cls.alpha * 24 == pytest.approx(alpha_total, rel=1e-12)


class TestSimulator:
    def test_deterministic_under_seed(self):
        dims = SwitchDimensions(4, 4)
        mm = Mmpp2(2.0, 0.5, 1.0, 1.0)
        a = MmppCrossbarSimulator(dims, mm, seed=9).run(500.0, 50.0)
        b = MmppCrossbarSimulator(dims, mm, seed=9).run(500.0, 50.0)
        assert a[0].offered == b[0].offered
        assert a[1] == pytest.approx(b[1])

    def test_degenerate_mmpp_matches_poisson_model(self):
        """Equal phase rates: the simulator must reproduce the paper's
        uniform Poisson crossbar."""
        n = 4
        dims = SwitchDimensions.square(n)
        rate = 1.5
        mm = Mmpp2(rate, rate, 1.0, 1.0)
        ratios = []
        for i in range(5):
            sim = MmppCrossbarSimulator(dims, mm, seed=40 + i)
            ratio, _ = sim.run(horizon=3000.0, warmup=300.0)
            ratios.append(ratio.ratio)
        ci = t_confidence_interval(ratios)
        analytical = solve_convolution(
            dims, [TrafficClass.poisson(rate / n**2)]
        ).non_blocking(0)
        assert ci.estimate == pytest.approx(analytical, rel=0.04)

    def test_validation(self):
        mm = Mmpp2(1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            MmppCrossbarSimulator(SwitchDimensions(0, 4), mm)
        with pytest.raises(ConfigurationError):
            MmppCrossbarSimulator(SwitchDimensions(4, 4), mm, mu=0.0)
        sim = MmppCrossbarSimulator(SwitchDimensions(4, 4), mm)
        with pytest.raises(ConfigurationError):
            sim.run(horizon=1.0, warmup=2.0)


class TestApproximationQuality:
    def test_bpp_beats_poisson_for_fast_modulated_bursts(self):
        """The paper's premise: matching two moments captures bursty
        traffic better than matching one — in the regime where phase
        holding times are comparable to call holding times."""
        n = 8
        dims = SwitchDimensions.square(n)
        mm = Mmpp2(3.0, 0.5, 0.8, 0.8)
        ratios = []
        for i in range(5):
            sim = MmppCrossbarSimulator(dims, mm, seed=500 + i)
            ratio, _ = sim.run(horizon=3000.0, warmup=300.0)
            ratios.append(ratio.ratio)
        simulated = t_confidence_interval(ratios).estimate
        bpp_acc = solve_convolution(
            dims, [bpp_surrogate_class(dims, mm)]
        ).call_acceptance(0)
        poisson_acc = solve_convolution(
            dims, [TrafficClass.poisson(mm.mean_rate / n**2)]
        ).call_acceptance(0)
        assert abs(bpp_acc - simulated) < abs(poisson_acc - simulated)
