"""Unit tests for switch dimensions and the state space."""

from __future__ import annotations

import math

import pytest

from repro.core.state import (
    SwitchDimensions,
    iter_states,
    log_permutation,
    max_connections,
    occupancy,
    occupancy_counts,
    permutation,
    state_space_size,
)
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError


class TestSwitchDimensions:
    def test_capacity_is_min(self):
        assert SwitchDimensions(3, 9).capacity == 3
        assert SwitchDimensions(9, 3).capacity == 3

    def test_crosspoints(self):
        assert SwitchDimensions(4, 6).crosspoints == 24

    def test_square(self):
        dims = SwitchDimensions.square(5)
        assert (dims.n1, dims.n2) == (5, 5)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchDimensions(-1, 2)

    def test_shrink_floors_at_zero(self):
        assert SwitchDimensions(2, 5).shrink(3) == SwitchDimensions(0, 2)

    def test_contains(self):
        big = SwitchDimensions(5, 7)
        assert big.contains(SwitchDimensions(5, 7))
        assert big.contains(SwitchDimensions(2, 3))
        assert not big.contains(SwitchDimensions(6, 2))

    def test_free_pairs(self):
        assert SwitchDimensions(4, 6).free_pairs(3) == (1, 3)

    def test_free_pairs_rejects_over_capacity(self):
        with pytest.raises(ConfigurationError):
            SwitchDimensions(4, 6).free_pairs(5)

    def test_str(self):
        assert str(SwitchDimensions(3, 4)) == "3x4"


class TestPermutation:
    def test_falling_factorial(self):
        assert permutation(5, 2) == 20
        assert permutation(5, 0) == 1
        assert permutation(5, 5) == 120

    def test_zero_when_a_exceeds_n(self):
        assert permutation(3, 4) == 0

    def test_negative_a_rejected(self):
        with pytest.raises(ConfigurationError):
            permutation(3, -1)

    def test_log_permutation_matches(self):
        assert log_permutation(10, 3) == pytest.approx(math.log(720))

    def test_log_permutation_minus_inf(self):
        assert log_permutation(2, 3) == -math.inf


class TestStateSpace:
    def test_single_class_unit_bandwidth(self):
        dims = SwitchDimensions(3, 5)
        states = list(iter_states(dims, [TrafficClass.poisson(0.1)]))
        assert states == [(0,), (1,), (2,), (3,)]

    def test_capacity_uses_min_dimension(self):
        dims = SwitchDimensions(5, 3)
        states = list(iter_states(dims, [TrafficClass.poisson(0.1)]))
        assert max(s[0] for s in states) == 3

    def test_multirate_weights(self):
        dims = SwitchDimensions(4, 4)
        classes = [TrafficClass.poisson(0.1), TrafficClass.poisson(0.1, a=2)]
        states = set(iter_states(dims, classes))
        assert (4, 0) in states
        assert (0, 2) in states
        assert (2, 1) in states
        assert (3, 1) not in states  # 3 + 2 > 4

    def test_size_matches_enumeration(self, small_dims, mixed_classes):
        states = list(iter_states(small_dims, mixed_classes))
        assert state_space_size(small_dims, mixed_classes) == len(states)

    def test_states_unique(self, small_dims, mixed_classes):
        states = list(iter_states(small_dims, mixed_classes))
        assert len(set(states)) == len(states)

    def test_occupancy_counts_sum_to_size(self, small_dims, mixed_classes):
        counts = occupancy_counts(small_dims, mixed_classes)
        assert sum(counts) == state_space_size(small_dims, mixed_classes)

    def test_occupancy_counts_by_level(self):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.1), TrafficClass.poisson(0.1, a=2)]
        counts = occupancy_counts(dims, classes)
        # m=0: (0,0); m=1: (1,0); m=2: (2,0),(0,1); m=3: (3,0),(1,1)
        assert counts == [1, 1, 2, 2]

    def test_empty_switch_has_only_empty_state(self):
        dims = SwitchDimensions(0, 5)
        states = list(iter_states(dims, [TrafficClass.poisson(0.1)]))
        assert states == [(0,)]

    def test_occupancy_helper(self):
        classes = [TrafficClass.poisson(0.1), TrafficClass.poisson(0.1, a=3)]
        assert occupancy((2, 1), classes) == 5

    def test_occupancy_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            occupancy((1, 2, 3), [TrafficClass.poisson(0.1)])

    def test_max_connections(self):
        dims = SwitchDimensions(7, 9)
        assert max_connections(dims, TrafficClass.poisson(0.1, a=2)) == 3

    def test_lexicographic_order(self):
        dims = SwitchDimensions(2, 2)
        classes = [TrafficClass.poisson(0.1), TrafficClass.poisson(0.1)]
        states = list(iter_states(dims, classes))
        assert states == sorted(states)
