"""Tests for the discrete-event crossbar simulator."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow  # Monte-Carlo runs against the analytic solvers

from repro.core.convolution import solve_convolution
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError
from repro.sim import (
    AsynchronousCrossbarSimulator,
    Deterministic,
    Erlang,
    Exponential,
    compare_with_analysis,
    hot_spot_weights,
    relative_error,
    run_hot_spot,
    run_replications,
)


class TestConstruction:
    def test_requires_classes(self):
        with pytest.raises(ConfigurationError):
            AsynchronousCrossbarSimulator(SwitchDimensions(2, 2), [])

    def test_service_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            AsynchronousCrossbarSimulator(
                SwitchDimensions(2, 2),
                [TrafficClass.poisson(0.1)],
                services=[Exponential(1.0), Exponential(1.0)],
            )

    def test_service_mean_mismatch(self):
        with pytest.raises(ConfigurationError):
            AsynchronousCrossbarSimulator(
                SwitchDimensions(2, 2),
                [TrafficClass.poisson(0.1, mu=2.0)],
                services=[Exponential(1.0)],  # should be mean 0.5
            )

    def test_bad_output_weights(self):
        with pytest.raises(ConfigurationError):
            AsynchronousCrossbarSimulator(
                SwitchDimensions(2, 3),
                [TrafficClass.poisson(0.1)],
                output_weights=[0.5, 0.5],  # wrong length
            )

    def test_horizon_must_exceed_warmup(self):
        sim = AsynchronousCrossbarSimulator(
            SwitchDimensions(2, 2), [TrafficClass.poisson(0.1)]
        )
        with pytest.raises(ConfigurationError):
            sim.run(horizon=10.0, warmup=10.0)


class TestDeterminism:
    def test_same_seed_same_result(self):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.2)]
        a = AsynchronousCrossbarSimulator(dims, classes, seed=5).run(500.0)
        b = AsynchronousCrossbarSimulator(dims, classes, seed=5).run(500.0)
        assert a.classes[0].offered == b.classes[0].offered
        assert a.classes[0].accepted == b.classes[0].accepted
        assert a.mean_occupancy == pytest.approx(b.mean_occupancy)

    def test_different_seeds_differ(self):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.2)]
        a = AsynchronousCrossbarSimulator(dims, classes, seed=5).run(500.0)
        b = AsynchronousCrossbarSimulator(dims, classes, seed=6).run(500.0)
        assert a.classes[0].offered != b.classes[0].offered


class TestAgainstAnalysis:
    def test_poisson_acceptance_matches(self):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.25, name="p")]
        summary = run_replications(
            dims, classes, horizon=4000.0, warmup=400.0,
            replications=5, seed=11,
        )
        solution = solve_convolution(dims, classes)
        comparison = compare_with_analysis(summary, classes, solution)
        assert comparison["classes"][0]["acceptance_covered"]
        assert relative_error(summary, classes, solution) < 0.05

    def test_bursty_call_acceptance_matches(self):
        """The BPP call-acceptance closed form is what arrivals see."""
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass(alpha=0.1, beta=0.35, name="pascal")]
        summary = run_replications(
            dims, classes, horizon=4000.0, warmup=400.0,
            replications=5, seed=23,
        )
        solution = solve_convolution(dims, classes)
        sim = summary.classes[0].acceptance.estimate
        ana = solution.call_acceptance(0)
        assert sim == pytest.approx(ana, rel=0.05)
        # ... and it is NOT the time-average ratio form:
        assert abs(sim - solution.non_blocking(0)) > abs(sim - ana)

    def test_multirate_blocking_ordering(self):
        """An a=2 class must see far more blocking than an a=1 class
        (Figure 4's key effect), already visible in simulation."""
        dims = SwitchDimensions(4, 4)
        classes = [
            TrafficClass.poisson(0.08, a=1, name="narrow"),
            TrafficClass.poisson(0.04, a=2, name="wide"),
        ]
        summary = run_replications(
            dims, classes, horizon=3000.0, warmup=300.0,
            replications=4, seed=2,
        )
        narrow = summary.classes[0].acceptance.estimate
        wide = summary.classes[1].acceptance.estimate
        assert wide < narrow

    def test_occupancy_covered(self):
        dims = SwitchDimensions(4, 5)
        classes = [
            TrafficClass.poisson(0.1),
            TrafficClass(alpha=0.05, beta=0.2),
        ]
        summary = run_replications(
            dims, classes, horizon=4000.0, warmup=400.0,
            replications=5, seed=31,
        )
        comparison = compare_with_analysis(summary, classes)
        assert comparison["occupancy_covered"] or (
            abs(
                comparison["occupancy_sim"].estimate
                - comparison["occupancy_analytical"]
            )
            / comparison["occupancy_analytical"]
            < 0.05
        )


class TestInsensitivity:
    """The paper's insensitivity claim: only the service *mean* matters."""

    @pytest.mark.parametrize(
        "service",
        [Deterministic(1.0), Erlang(1.0, k=4)],
        ids=["deterministic", "erlang4"],
    )
    def test_non_exponential_service_same_blocking(self, service):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.3, name="p")]
        summary = run_replications(
            dims, classes, horizon=4000.0, warmup=400.0,
            replications=5, seed=17, services=[service],
        )
        solution = solve_convolution(dims, classes)
        sim = summary.classes[0].acceptance.estimate
        assert sim == pytest.approx(solution.non_blocking(0), rel=0.05)


class TestHotSpot:
    def test_weights_shape(self):
        w = hot_spot_weights(5, hot_output=2, factor=4.0)
        assert w.sum() == pytest.approx(1.0)
        assert w[2] == pytest.approx(4.0 * w[0])

    def test_uniform_factor_recovers_model(self):
        dims = SwitchDimensions(3, 3)
        classes = [TrafficClass.poisson(0.25)]
        summary = run_hot_spot(
            dims, classes, factor=1.0, horizon=3000.0, warmup=300.0,
            replications=4, seed=5,
        )
        solution = solve_convolution(dims, classes)
        assert summary.classes[0].acceptance.estimate == pytest.approx(
            solution.non_blocking(0), rel=0.05
        )

    def test_hot_spot_increases_blocking(self):
        dims = SwitchDimensions(4, 4)
        classes = [TrafficClass.poisson(0.2)]
        uniform = run_hot_spot(
            dims, classes, factor=1.0, horizon=3000.0, warmup=300.0,
            replications=4, seed=9,
        )
        skewed = run_hot_spot(
            dims, classes, factor=8.0, horizon=3000.0, warmup=300.0,
            replications=4, seed=9,
        )
        assert (
            skewed.classes[0].acceptance.estimate
            < uniform.classes[0].acceptance.estimate
        )

    def test_bad_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            hot_spot_weights(4, 0, factor=0.5)

    def test_bad_hot_output_rejected(self):
        with pytest.raises(ConfigurationError):
            hot_spot_weights(4, 7, factor=2.0)


class TestRunnerValidation:
    def test_replications_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            run_replications(
                SwitchDimensions(2, 2), [TrafficClass.poisson(0.1)],
                horizon=100.0, replications=0,
            )
