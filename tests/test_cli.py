"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        parser.parse_args(["figure1"])
        parser.parse_args(["table2", "--set", "1"])
        parser.parse_args(["solve", "--n", "4", "--poisson", "0.1"])
        parser.parse_args(
            ["batch", "--n", "4", "--poisson", "0.1", "--sizes", "4,8"]
        )
        parser.parse_args(
            ["serve", "--port", "0", "--gate-capacity", "8",
             "--batch-window", "0.01"]
        )

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "0.0006" in out

    def test_solve_poisson(self, capsys):
        assert main(["solve", "--n", "4", "--poisson", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Crossbar 4x4" in out
        assert "poisson-0" in out

    def test_solve_rectangular_mva(self, capsys):
        code = main(
            ["solve", "--n", "3", "--n2", "5", "--poisson", "0.1",
             "--method", "mva"]
        )
        assert code == 0
        assert "3x5" in capsys.readouterr().out

    def test_solve_all_class_kinds(self, capsys):
        code = main(
            ["solve", "--n", "6", "--poisson", "0.1", "--pascal",
             "0.05:0.2", "--bernoulli", "4:0.02"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pascal-1" in out and "bernoulli-2" in out

    def test_solve_multirate_spec(self, capsys):
        assert main(["solve", "--n", "6", "--poisson", "0.05:2"]) == 0
        assert "a=2" in capsys.readouterr().out

    def test_solve_without_classes_fails(self, capsys):
        assert main(["solve", "--n", "4"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_pascal_spec_fails(self, capsys):
        assert main(["solve", "--n", "4", "--pascal", "0.1"]) == 2

    def test_figure4(self, capsys):
        assert main(["figure4", "--precision", "4"]) == 0
        out = capsys.readouterr().out
        assert "a=1" in out and "a=2" in out

    def test_simulate(self, capsys):
        code = main(
            ["simulate", "--n", "3", "--poisson", "0.2",
             "--horizon", "300", "--warmup", "30",
             "--replications", "2", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Simulation vs analysis" in out

    def test_solve_from_config_json(self, capsys, tmp_path):
        config = tmp_path / "model.json"
        config.write_text(
            '{"n1": 4, "n2": 4, "classes": [{"alpha": 0.1}]}'
        )
        assert main(["solve", "--config", str(config), "--json"]) == 0
        import json

        record = json.loads(capsys.readouterr().out)
        assert record["dims"] == [4, 4]

    def test_solve_requires_n_or_config(self, capsys):
        assert main(["solve", "--poisson", "0.1"]) == 2
        assert "--n is required" in capsys.readouterr().err

    def test_report_command(self, capsys, tmp_path):
        out = tmp_path / "report"
        assert main(["report", "--output", str(out)]) == 0
        text = capsys.readouterr().out
        assert "reproduction criteria pass" in text
        assert (out / "summary.txt").exists()

    def test_figure_plot_flag(self, capsys):
        assert main(["figure4", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "x: N" in out  # chart footer

    def test_validate(self, capsys):
        code = main(["validate", "--n", "4", "--poisson", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CONSISTENT" in out

    def test_hotspot(self, capsys):
        code = main(
            ["hotspot", "--n", "5", "--rho", "0.1",
             "--factors", "1,4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Hot-spot sweep" in out
        assert "hot-request B" in out

    def test_asymptotic(self, capsys):
        code = main(
            ["asymptotic", "--n", "512", "--poisson", "0.00001"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Large-system approximation" in out

    def test_multistage(self, capsys):
        code = main(
            ["multistage", "--n", "4", "--stages", "2",
             "--poisson", "0.02"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "end-to-end blocking" in out

    def test_table2_small(self, capsys):
        # full table2 runs to N=256; keep CLI test on the real path but
        # accept its runtime (~seconds)
        assert main(["table2", "--set", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_robust_healthy(self, capsys):
        code = main(["robust", "--n", "4", "--poisson", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "solver chain" in out
        assert "chosen: mva" in out
        assert "Healthy 4x4 via mva" in out

    def test_robust_degraded_and_availability(self, capsys):
        code = main(
            ["robust", "--n", "5", "--poisson", "0.1",
             "--failed-inputs", "0,2", "--failed-outputs", "4",
             "--availability", "0.9", "--routing", "oblivious"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded-mode analysis" in out
        assert "3 failed ports -> 3x4" in out
        assert "availability-weighted measures" in out
        assert "A_in=0.9" in out

    def test_robust_budgets_parse(self, capsys):
        code = main(
            ["robust", "--n", "4", "--poisson", "0.1",
             "--budget", "30", "--solver-budget", "10"]
        )
        assert code == 0
        assert "chosen:" in capsys.readouterr().out


class TestBatchCommand:
    def test_batch_sizes_table(self, capsys):
        code = main(
            ["batch", "--poisson", "0.01", "--sizes", "4,8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Batch of 2 requests" in out
        assert "4x4" in out and "8x8" in out

    def test_batch_metrics_json_to_file(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        code = main(
            ["batch", "--poisson", "0.01", "--sizes", "4,8,16",
             "--metrics-json", str(path)]
        )
        assert code == 0
        record = json.loads(path.read_text())
        assert record["requests"] == 3
        assert "hit_rate" in record and "grid_points" in record
        assert "breaker_state" in record

    def test_batch_metrics_json_to_stdout(self, capsys):
        import json

        code = main(
            ["batch", "--poisson", "0.01", "--sizes", "4", "--json",
             "--metrics-json", "-"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # stdout holds the metrics object then the results array
        metrics_text, _, results_text = out.partition("\n[")
        record = json.loads(metrics_text)
        assert record["requests"] == 1
        results = json.loads("[" + results_text)
        assert results[0]["request"]["n1"] == 4
        assert results[0]["request"]["n2"] == 4

    def test_batch_from_request_file(self, capsys, tmp_path):
        import json

        from repro.api import SolveRequest
        from repro.core.traffic import TrafficClass

        request = SolveRequest.square(4, [TrafficClass.poisson(0.05)])
        path = tmp_path / "requests.json"
        path.write_text(json.dumps({"requests": [request.to_dict()]}))
        assert main(["batch", "--requests", str(path)]) == 0
        assert "4x4" in capsys.readouterr().out

    def test_batch_without_inputs_fails(self, capsys):
        assert main(["batch", "--poisson", "0.1"]) == 2
        assert "error" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_parses_knobs(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "9999",
             "--gate-capacity", "16", "--point-weight", "2",
             "--batch-member-weight", "3", "--batch-window", "0.05",
             "--max-batch", "32", "--min-hold", "0.1"]
        )
        assert args.host == "0.0.0.0" and args.port == 9999
        assert args.gate_capacity == 16
        assert args.point_weight == 2
        assert args.batch_member_weight == 3
        assert args.batch_window == 0.05
        assert args.max_batch == 32
        assert args.min_hold == 0.1

    def test_serve_rejects_bad_capacity(self, capsys):
        assert main(["serve", "--port", "0", "--gate-capacity", "0"]) == 2
        assert "error" in capsys.readouterr().err


class TestResilienceFlags:
    @pytest.fixture(autouse=True)
    def restore_engine(self):
        from repro.engine import reset_default_engine

        yield
        reset_default_engine()

    def test_flags_parse_before_subcommand(self):
        args = build_parser().parse_args(
            ["--max-retries", "5", "--task-deadline", "2.5",
             "--no-hedging", "table1"]
        )
        assert args.max_retries == 5
        assert args.task_deadline == 2.5
        assert args.no_hedging

    def test_flags_configure_default_engine(self, capsys):
        from repro.engine import get_default_engine

        assert main(
            ["--max-retries", "5", "--task-deadline", "2.5",
             "solve", "--n", "3", "--poisson", "0.05"]
        ) == 0
        config = get_default_engine().config
        assert config.max_retries == 5
        assert config.task_deadline == 2.5
        assert "Crossbar 3x3" in capsys.readouterr().out

    def test_no_hedging_overrides_hedge_after(self):
        from repro.engine import get_default_engine

        assert main(
            ["--hedge-after", "1.0", "--no-hedging", "table1"]
        ) == 0
        assert get_default_engine().config.hedge_after is None

    def test_no_flags_leave_engine_untouched(self):
        from repro.engine import get_default_engine, set_default_engine

        sentinel = get_default_engine()
        assert main(["table1"]) == 0
        assert get_default_engine() is sentinel
        set_default_engine(sentinel)
