"""Tests for the CrossbarModel facade."""

from __future__ import annotations

import pytest

from repro.core.model import CrossbarModel
from repro.core.state import SwitchDimensions, state_space_size
from repro.core.traffic import TrafficClass
from repro.exceptions import ConfigurationError


@pytest.fixture
def model(small_dims, mixed_classes):
    return CrossbarModel(small_dims, tuple(mixed_classes))


class TestConstruction:
    def test_create_from_integers(self):
        model = CrossbarModel.create(4, 6, [TrafficClass.poisson(0.1)])
        assert model.dims == SwitchDimensions(4, 6)

    def test_square(self):
        model = CrossbarModel.square(5, [TrafficClass.poisson(0.1)])
        assert model.dims == SwitchDimensions(5, 5)

    def test_requires_classes(self):
        with pytest.raises(ConfigurationError):
            CrossbarModel(SwitchDimensions(3, 3), ())

    def test_validates_classes(self):
        bad = TrafficClass(alpha=0.25, beta=-0.1)  # 2.5 sources
        with pytest.raises(ConfigurationError):
            CrossbarModel.square(12, (TrafficClass.poisson(0.1), bad))

    def test_state_space_size(self, model, small_dims, mixed_classes):
        assert model.state_space_size == state_space_size(
            small_dims, mixed_classes
        )

    def test_with_class(self, model):
        bigger = model.with_class(TrafficClass.poisson(0.01, name="extra"))
        assert len(bigger.classes) == len(model.classes) + 1


class TestSolveMethods:
    @pytest.mark.parametrize(
        "method",
        ["convolution", "convolution-scaled", "mva", "exact", "brute-force"],
    )
    def test_all_methods_agree(self, model, method):
        reference = model.solve()
        other = model.solve(method=method)
        for r in range(len(model.classes)):
            assert other.non_blocking(r) == pytest.approx(
                reference.non_blocking(r), rel=1e-9
            )
            assert other.concurrency(r) == pytest.approx(
                reference.concurrency(r), rel=1e-9
            )

    def test_float_method_on_small_system(self, model):
        solution = model.solve(method="convolution-float")
        reference = model.solve()
        assert solution.non_blocking(0) == pytest.approx(
            reference.non_blocking(0), rel=1e-10
        )

    def test_unknown_method_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.solve(method="oracle")

    def test_distribution_is_normalized(self, model):
        assert model.distribution().check_normalized()

    def test_moment_report(self, model):
        report = model.moment_report()
        dist = model.distribution()
        assert len(report["classes"]) == len(model.classes)
        for r, entry in enumerate(report["classes"]):
            assert entry["mean"] == pytest.approx(
                dist.concurrency(r), rel=1e-9
            )
            assert entry["variance"] == pytest.approx(
                dist.concurrency_variance(r), rel=1e-8, abs=1e-12
            )
        assert report["occupancy_mean"] == pytest.approx(
            dist.mean_occupancy(), rel=1e-9
        )
        assert sum(report["occupancy_pmf"]) == pytest.approx(1.0)


class TestScaledTo:
    def test_preserves_aggregate_parameters(self):
        n = 8
        model = CrossbarModel.square(
            n,
            [TrafficClass.from_aggregate(0.24, 0.012, n2=n, name="x")],
        )
        bigger = model.scaled_to(16)
        assert bigger.dims == SwitchDimensions.square(16)
        assert bigger.classes[0].aggregate_alpha(16) == pytest.approx(0.24)
        assert bigger.classes[0].aggregate_beta(16) == pytest.approx(0.012)

    def test_preserves_weight_and_name(self):
        model = CrossbarModel.square(
            4, [TrafficClass.poisson(0.1, weight=3.0, name="gold")]
        )
        scaled = model.scaled_to(8)
        assert scaled.classes[0].weight == 3.0
        assert scaled.classes[0].name == "gold"

    def test_scaled_model_equals_directly_built_model(self):
        n = 4
        model = CrossbarModel.square(
            n,
            [TrafficClass.from_aggregate(0.5, 0.01, n2=n)],
        )
        scaled = model.scaled_to(16)
        direct = CrossbarModel.square(
            16,
            [TrafficClass.from_aggregate(0.5, 0.01, n2=16)],
        )
        assert scaled.solve().blocking(0) == pytest.approx(
            direct.solve().blocking(0), rel=1e-12
        )
