"""Tests for the synchronous (slotted) crossbar baseline."""

from __future__ import annotations

import math

import pytest

from repro.baselines import (
    saturation_throughput,
    simulate_slotted,
    slotted_acceptance,
    slotted_output_throughput,
)
from repro.exceptions import ConfigurationError, InvalidParameterError


class TestClosedForms:
    def test_zero_load(self):
        assert slotted_output_throughput(8, 8, 0.0) == 0.0
        assert slotted_acceptance(8, 8, 0.0) == 1.0

    def test_single_input_never_contends(self):
        assert slotted_acceptance(1, 4, 0.7) == pytest.approx(1.0)

    def test_saturation_limit_is_one_minus_inv_e(self):
        assert saturation_throughput(10_000) == pytest.approx(
            1.0 - math.exp(-1.0), rel=1e-4
        )

    def test_saturation_decreases_with_n(self):
        values = [saturation_throughput(n) for n in (2, 4, 16, 64)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_throughput_monotone_in_load(self):
        low = slotted_output_throughput(8, 8, 0.2)
        high = slotted_output_throughput(8, 8, 0.8)
        assert high > low

    def test_acceptance_monotone_down_in_load(self):
        low = slotted_acceptance(8, 8, 0.2)
        high = slotted_acceptance(8, 8, 0.8)
        assert high < low

    def test_known_two_by_two(self):
        # q = 1 - (1 - p/2)^2 with p = 1 -> 3/4
        assert slotted_output_throughput(2, 2, 1.0) == pytest.approx(0.75)


class TestSimulationAgreement:
    @pytest.mark.parametrize("p", [0.3, 0.9])
    def test_monte_carlo_matches_formula(self, p):
        n = 8
        throughput, acceptance = simulate_slotted(
            n, n, p, slots=20_000, seed=7
        )
        assert throughput == pytest.approx(
            slotted_output_throughput(n, n, p), rel=0.03
        )
        assert acceptance == pytest.approx(
            slotted_acceptance(n, n, p), rel=0.03
        )

    def test_rectangular(self):
        throughput, _ = simulate_slotted(4, 8, 0.8, slots=20_000, seed=3)
        assert throughput == pytest.approx(
            slotted_output_throughput(4, 8, 0.8), rel=0.04
        )


class TestValidation:
    def test_bad_load(self):
        with pytest.raises(InvalidParameterError):
            slotted_output_throughput(4, 4, 1.5)

    def test_bad_dims(self):
        with pytest.raises(ConfigurationError):
            slotted_output_throughput(0, 4, 0.5)

    def test_bad_slots(self):
        with pytest.raises(ConfigurationError):
            simulate_slotted(4, 4, 0.5, slots=0)
