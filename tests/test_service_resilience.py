"""Overload resilience of the daemon: deadlines, timeouts, drain.

The contract under stress mirrors the model's own philosophy — fail
one request, never the fabric:

* a client ``deadline_ms`` budget propagates wire -> gate -> batcher
  -> engine, and a blown budget is a structured 504 with every
  admission token returned;
* a slow-loris peer is cut off by the read timeout without ever
  touching the gate;
* a client that vanishes mid-request leaks nothing;
* SIGTERM drains: admitted work completes (followers included), new
  work is cleared, and a second signal forces exit.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

pytestmark = pytest.mark.service  # spins up the solve-serving daemon

from repro.api import SolveRequest, solve
from repro.core.traffic import TrafficClass
from repro.engine import BatchSolver, EngineConfig, ServiceFaultInjector, ServiceFaultPlan
from repro.exceptions import ConfigurationError
from repro.service import (
    AdmissionRejectedError,
    BrownoutConfig,
    DeadlineExceededError,
    MicroBatcher,
    RequestExpiredError,
    ServiceClient,
    ServiceConfig,
    start_in_thread,
)
from repro.service.protocol import decode_deadline_ms


def point_request(n: int = 4, rate: float = 0.01) -> SolveRequest:
    return SolveRequest.square(n, [TrafficClass.poisson(rate)])


def quiet_config(**overrides) -> ServiceConfig:
    """Ephemeral port, brownout off (these tests isolate other layers)."""
    defaults = dict(
        port=0, batch_window=0.005,
        brownout=BrownoutConfig(enabled=False),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


# ----------------------------------------------------------------------
# Deadline decoding (wire layer)
# ----------------------------------------------------------------------


def test_decode_deadline_ms_returns_seconds():
    assert decode_deadline_ms({"deadline_ms": 250}) == 0.25
    assert decode_deadline_ms({"deadline_ms": 1500.0}) == 1.5


@pytest.mark.parametrize(
    "raw", [None, 0, -5, float("nan"), float("inf")]
)
def test_decode_deadline_ms_nonpositive_means_unbounded(raw):
    assert decode_deadline_ms({"deadline_ms": raw}) is None


def test_decode_deadline_ms_absent_and_nondict():
    assert decode_deadline_ms({}) is None
    assert decode_deadline_ms([1, 2]) is None


def test_decode_deadline_ms_rejects_garbage():
    with pytest.raises(ConfigurationError):
        decode_deadline_ms({"deadline_ms": "soon"})


# ----------------------------------------------------------------------
# Batcher deadline semantics (unit)
# ----------------------------------------------------------------------


def test_batcher_forwards_tightest_shared_budget():
    """All members bounded => runner sees the latest remaining budget."""
    seen: list[float | None] = []

    def runner(requests, task_deadline):
        seen.append(task_deadline)
        return [object()] * len(requests)

    async def scenario() -> None:
        batcher = MicroBatcher(runner, window=0.01, max_batch=8)
        loop = asyncio.get_running_loop()
        now = time.monotonic()
        futures = [loop.create_future() for _ in range(2)]
        batcher.submit(point_request(4), futures[0], now + 0.5)
        batcher.submit(point_request(5), futures[1], now + 1.0)
        await asyncio.gather(*futures)
        await batcher.close()

    asyncio.run(scenario())
    assert len(seen) == 1
    # The batch budget is the *latest* member deadline (the shorter one
    # is enforced per-request by the server's bounded await).
    assert seen[0] == pytest.approx(1.0, abs=0.2)


def test_batcher_unbounded_member_disables_batch_budget():
    seen: list[float | None] = []

    def runner(requests, task_deadline):
        seen.append(task_deadline)
        return [object()] * len(requests)

    async def scenario() -> None:
        batcher = MicroBatcher(runner, window=0.01, max_batch=8)
        loop = asyncio.get_running_loop()
        futures = [loop.create_future() for _ in range(2)]
        batcher.submit(point_request(4), futures[0],
                       time.monotonic() + 0.5)
        batcher.submit(point_request(5), futures[1], None)
        await asyncio.gather(*futures)
        await batcher.close()

    asyncio.run(scenario())
    assert seen == [None]


def test_batcher_drops_expired_members_at_flush():
    """An expired member never occupies a batch slot."""
    ran: list[int] = []

    def runner(requests):
        ran.append(len(requests))
        return [object()] * len(requests)

    async def scenario() -> None:
        batcher = MicroBatcher(runner, window=0.005, max_batch=8)
        loop = asyncio.get_running_loop()
        expired = loop.create_future()
        live = loop.create_future()
        batcher.submit(point_request(4), expired,
                       time.monotonic() - 0.001)  # already blown
        batcher.submit(point_request(5), live, None)
        with pytest.raises(RequestExpiredError):
            await expired
        await live
        await batcher.close()

    asyncio.run(scenario())
    assert ran == [1]  # only the live member reached the engine


def test_batcher_respawns_worker_and_requeues_once():
    """A runner death is supervised: rebuild the worker, rerun, serve."""
    calls = {"n": 0}

    def dying_runner(requests):
        calls["n"] += 1
        if calls["n"] == 1:
            raise OSError("chaos: runner died")
        return [object()] * len(requests)

    async def scenario() -> list:
        batcher = MicroBatcher(dying_runner, window=0.001, max_batch=8)
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        batcher.submit(point_request(4), future)
        result = await future
        await batcher.close()
        return [result, batcher.worker_respawns]

    result, respawns = asyncio.run(scenario())
    assert result is not None
    assert respawns == 1
    assert calls["n"] == 2


def test_batcher_double_death_relays_failure():
    def always_dying(requests):
        raise OSError("chaos: runner died again")

    async def scenario() -> None:
        batcher = MicroBatcher(always_dying, window=0.001, max_batch=8)
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        batcher.submit(point_request(4), future)
        with pytest.raises(OSError):
            await future
        await batcher.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Deadlines end to end
# ----------------------------------------------------------------------


def test_generous_deadline_is_byte_identical():
    with start_in_thread(
        quiet_config(), engine=BatchSolver(EngineConfig())
    ) as handle:
        client = ServiceClient(*handle.address)
        request = point_request(6)
        remote = client.solve(request, deadline_ms=30_000)
        assert remote == solve(request)
        gate = handle.service.gate
        assert gate.in_use == 0


def test_blown_deadline_returns_structured_504():
    engine = BatchSolver(EngineConfig())
    with start_in_thread(quiet_config(), engine=engine) as handle:
        service = handle.service
        # Slow the flush runner down far past the budget.
        real = service._run_batch

        def slow_runner(requests, task_deadline=None):
            time.sleep(0.3)
            return real(requests, task_deadline)

        service.batcher._runner = slow_runner
        client = ServiceClient(*handle.address)
        with pytest.raises(DeadlineExceededError) as excinfo:
            client.solve(point_request(7), deadline_ms=50)
        assert excinfo.value.phase in ("wait", "batch", "engine")
        # Every admission token must come back despite the 504.
        deadline = time.monotonic() + 5.0
        while service.gate.in_use and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.gate.in_use == 0
        # The daemon is still healthy for bounded-free requests.
        request = point_request(8)
        assert client.solve(request) == solve(request)


def test_batch_deadline_applies_to_envelope():
    engine = BatchSolver(EngineConfig())
    with start_in_thread(quiet_config(), engine=engine) as handle:
        service = handle.service
        real = service._run_batch

        def slow_runner(requests, task_deadline=None):
            time.sleep(0.3)
            return real(requests, task_deadline)

        service.batcher._runner = slow_runner
        client = ServiceClient(*handle.address)
        with pytest.raises(DeadlineExceededError):
            client.solve_many(
                [point_request(4), point_request(5)], deadline_ms=50
            )
        deadline = time.monotonic() + 5.0
        while service.gate.in_use and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.gate.in_use == 0


def test_deadline_504_reported_on_metrics():
    engine = BatchSolver(EngineConfig())
    with start_in_thread(quiet_config(), engine=engine) as handle:
        service = handle.service
        service.batcher._runner = (
            lambda requests: (time.sleep(0.3), [None])[1] * len(requests)
        )
        client = ServiceClient(*handle.address)
        with pytest.raises(DeadlineExceededError):
            client.solve(point_request(9), deadline_ms=40)
        page = client.metrics()
        assert "repro_service_deadline_exceeded_total" in page
        phased = [
            line for line in page.splitlines()
            if line.startswith("repro_service_deadline_exceeded_total{")
            and not line.endswith(" 0")
        ]
        assert phased  # at least one phase bucket moved


# ----------------------------------------------------------------------
# Slow loris and vanished clients
# ----------------------------------------------------------------------


def test_slow_loris_is_cut_off_by_read_timeout():
    with start_in_thread(
        quiet_config(read_timeout=0.2),
        engine=BatchSolver(EngineConfig()),
    ) as handle:
        injector = ServiceFaultInjector(
            ServiceFaultPlan.from_seed(11, stalls=1)
        )
        began = time.monotonic()
        sock = injector.stalled_socket(*handle.address)
        try:
            sock.settimeout(5.0)
            raw = b""
            while b"\r\n\r\n" not in raw:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                raw += chunk
            elapsed = time.monotonic() - began
            assert b"408" in raw.split(b"\r\n", 1)[0]
            assert elapsed < 3.0  # the bound, not the 30s client patience
        finally:
            sock.close()
        gate = handle.service.gate
        assert gate.in_use == 0
        assert gate.offered == 0  # never reached the gate
        # And the daemon still serves normal traffic afterwards.
        client = ServiceClient(*handle.address)
        request = point_request(5)
        assert client.solve(request) == solve(request)


def test_read_timeout_disabled_by_default_config_is_bounded():
    # The default config has a finite read timeout: a daemon with the
    # stock knobs cannot be pinned by a silent connection.
    assert ServiceConfig().read_timeout is not None
    assert ServiceConfig().read_timeout > 0


@pytest.mark.parametrize("path", ["/solve", "/batch"])
def test_disconnect_mid_request_leaks_no_tokens(path):
    engine = BatchSolver(EngineConfig())
    with start_in_thread(
        quiet_config(min_hold=0.05), engine=engine
    ) as handle:
        service = handle.service
        request = point_request(6)
        if path == "/solve":
            body = json.dumps({"request": request.to_dict()})
        else:
            body = json.dumps({
                "requests": [request.to_dict(),
                             point_request(7).to_dict()],
            })
        injector = ServiceFaultInjector(
            ServiceFaultPlan.from_seed(13, disconnects=3)
        )
        for _ in range(3):
            injector.disconnect_mid_request(
                *handle.address, body.encode("utf-8"), path=path
            )
        # The daemon finishes the work it admitted, fails the writes,
        # and releases every token.
        deadline = time.monotonic() + 10.0
        while service.gate.in_use and time.monotonic() < deadline:
            time.sleep(0.02)
        assert service.gate.in_use == 0
        assert service.gate.admitted == service.gate.released
        assert service.instruments._inflight_count == 0
        # Byte identity is unharmed for the next caller.
        client = ServiceClient(*handle.address)
        assert client.solve(request) == solve(request)


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------


def test_drain_completes_inflight_work_and_followers():
    engine = BatchSolver(EngineConfig())
    with start_in_thread(quiet_config(), engine=engine) as handle:
        service = handle.service
        real = service._run_batch
        release = threading.Event()

        def gated_runner(requests, task_deadline=None):
            release.wait(5.0)
            return real(requests, task_deadline)

        service.batcher._runner = gated_runner
        request = point_request(6)
        with ThreadPoolExecutor(max_workers=2) as pool:
            client = ServiceClient(*handle.address)
            leader = pool.submit(client.solve, request)
            follower = pool.submit(client.solve, request)
            # Wait until both are inside the daemon.
            deadline = time.monotonic() + 5.0
            while (
                service.instruments._inflight_count < 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            drainer = pool.submit(handle.drain, 10.0)
            time.sleep(0.05)
            release.set()
            assert drainer.result(15.0) is True
            local = solve(request)
            assert leader.result(10.0) == local
            assert follower.result(10.0) == local
        assert service.gate.in_use == 0
        assert not service.batcher.busy
        assert len(service.flights) == 0


def test_drained_daemon_clears_new_work():
    engine = BatchSolver(EngineConfig())
    handle = start_in_thread(quiet_config(), engine=engine)
    try:
        client = ServiceClient(*handle.address)
        request = point_request(4)
        assert client.solve(request) == solve(request)
        assert handle.drain(5.0) is True
        # The listener is closed; new connections are refused outright.
        with pytest.raises((ConnectionError, OSError)):
            client.solve(request)
    finally:
        handle.stop()


def test_drain_times_out_on_wedged_engine():
    engine = BatchSolver(EngineConfig())
    with start_in_thread(quiet_config(), engine=engine) as handle:
        service = handle.service
        real = service._run_batch
        wedge = threading.Event()

        def wedged_runner(requests, task_deadline=None):
            wedge.wait(20.0)
            return real(requests, task_deadline)

        service.batcher._runner = wedged_runner
        client = ServiceClient(*handle.address, timeout=30.0)
        with ThreadPoolExecutor(max_workers=1) as pool:
            stuck = pool.submit(client.solve, point_request(5))
            deadline = time.monotonic() + 5.0
            while (
                service.instruments._inflight_count < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert handle.drain(0.3) is False  # honest about the wedge
            wedge.set()
            stuck.result(15.0)


# ----------------------------------------------------------------------
# SIGTERM end to end (subprocess)
# ----------------------------------------------------------------------


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_daemon(port: int, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", str(port), *extra],
        env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )


def _wait_healthy(port: int, timeout: float = 20.0) -> ServiceClient:
    client = ServiceClient("127.0.0.1", port, timeout=10.0)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client.health()
            return client
        except OSError:
            time.sleep(0.05)
    raise RuntimeError("daemon did not come up")


@pytest.mark.slow
def test_sigterm_drains_inflight_then_exits():
    port = _free_port()
    proc = _spawn_daemon(port, "--min-hold", "0.5")
    try:
        client = _wait_healthy(port)
        request = point_request(5)
        with ThreadPoolExecutor(max_workers=1) as pool:
            inflight = pool.submit(client.solve, request)
            time.sleep(0.15)  # let it pass admission and start holding
            proc.send_signal(signal.SIGTERM)
            # The admitted request completes despite the signal.
            assert inflight.result(15.0) == solve(request)
        assert proc.wait(15.0) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(5.0)


@pytest.mark.slow
def test_second_sigterm_forces_exit():
    port = _free_port()
    # A huge min-hold wedges the drain; only the second signal exits.
    proc = _spawn_daemon(
        port, "--min-hold", "30", "--drain-timeout", "60"
    )
    try:
        client = _wait_healthy(port)
        with ThreadPoolExecutor(max_workers=1) as pool:
            pool.submit(
                lambda: ServiceClient(
                    "127.0.0.1", port, timeout=5.0
                ).solve(point_request(4))
            )
            time.sleep(0.3)
            proc.send_signal(signal.SIGTERM)
            time.sleep(0.5)
            assert proc.poll() is None  # still draining the 30s hold
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(15.0) is not None
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(5.0)
