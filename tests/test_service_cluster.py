"""The sharded multi-worker cluster: routing, identity, resilience.

Four fleet-level contracts from the PR-7 tentpole:

* **byte identity** — any worker, asked the same canonical request,
  returns the same encoded result (solves are pure, so sharding is an
  optimization, never a semantic);
* **stable shard routing** — the consistent-hash ring is keyed by
  shard *index*, so a respawned worker (new pid, new port) inherits
  exactly the keys its predecessor owned;
* **shared disk cache** — two workers writing the same entries through
  the ``.tmp-<pid>`` + rename protocol never corrupt the store nor
  leave droppings behind;
* **metrics federation** — the router's ``/metrics`` page carries every
  worker's samples, each labeled with its shard.
"""

from __future__ import annotations

import json
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection

import pytest

pytestmark = pytest.mark.service  # spawns worker processes

from repro.api import SolveRequest, solve
from repro.core.traffic import TrafficClass
from repro.service import (
    ClusterConfig,
    ServiceClient,
    ServiceConfig,
    start_cluster_in_thread,
)
from repro.service.sharding import HashRing

REQUESTS = [
    SolveRequest.square(
        n,
        [
            TrafficClass.poisson(0.002, name="data"),
            TrafficClass(alpha=0.001, beta=0.0005, name="video"),
        ],
    )
    for n in (4, 5, 6, 7)
]


def solution_bytes(fragment: dict) -> str:
    """Canonical solution bytes: the encoded result minus provenance
    (``from_cache`` says where a worker got the answer, not what the
    answer is — it differs between a warmed owner and a cold peer)."""
    record = dict(fragment)
    record.pop("from_cache", None)
    return json.dumps(record, sort_keys=True)


def wire_solve(
    host: str, port: int, request: SolveRequest
) -> tuple[int, int | None, dict]:
    """One raw /solve round-trip returning (status, shard, envelope)."""
    connection = HTTPConnection(host, port, timeout=30.0)
    try:
        connection.request(
            "POST", "/solve",
            body=json.dumps({"request": request.to_dict()}).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        raw = response.read()
        shard = response.getheader("X-Shard")
        return (
            response.status,
            int(shard) if shard is not None else None,
            json.loads(raw.decode()),
        )
    finally:
        connection.close()


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("fleet-cache")
    config = ServiceConfig(
        port=0,
        cluster=ClusterConfig(workers=2, cache_dir=str(cache_dir)),
    )
    with start_cluster_in_thread(config) as handle:
        yield handle, cache_dir


@pytest.fixture(scope="module")
def shard_map(cluster):
    handle, _ = cluster
    client = ServiceClient(*handle.address)
    chart = client.cluster_map()
    assert chart is not None and chart["strategy"] == "hash"
    return chart


def test_cluster_map_reports_the_fleet(shard_map):
    assert shard_map["workers"] == 2
    shards = {entry["shard"]: entry for entry in shard_map["shards"]}
    assert sorted(shards) == [0, 1]
    assert all(entry["alive"] for entry in shards.values())
    assert len({entry["pid"] for entry in shards.values()}) == 2
    assert len({entry["port"] for entry in shards.values()}) == 2


def test_router_routes_by_canonical_key(cluster, shard_map):
    handle, _ = cluster
    ring = HashRing(
        shard_map["workers"], shard_map["hash_replicas"]
    )
    for request in REQUESTS:
        status, shard, _ = wire_solve(*handle.address, request)
        assert status == 200
        assert shard == ring.shard_for(request.cache_key)
        # Repeat solves of the same key stay on the same shard.
        _, again, _ = wire_solve(*handle.address, request)
        assert again == shard


def test_cross_worker_byte_identity(cluster, shard_map):
    """Every worker answers every request with identical result bytes,
    and those bytes match a local in-process solve."""
    workers = [
        (entry["host"], entry["port"]) for entry in shard_map["shards"]
    ]
    for request in REQUESTS:
        local = solve(request)
        fragments = set()
        for address in workers:
            status, _, envelope = wire_solve(*address, request)
            assert status == 200
            fragments.add(solution_bytes(envelope["result"]))
            from repro.service.protocol import decode_result

            assert decode_result(envelope["result"]) == local
        assert len(fragments) == 1, "workers disagreed on result bytes"


def test_shared_disk_cache_survives_concurrent_writers(
    cluster, shard_map
):
    """Both workers hammer the same fresh keys; the shared store ends
    up consistent with no temp-file droppings."""
    handle, cache_dir = cluster
    workers = [
        (entry["host"], entry["port"]) for entry in shard_map["shards"]
    ]
    fresh = [
        SolveRequest.square(
            n, [TrafficClass.poisson(0.003, name="burst")]
        )
        for n in (8, 9, 10, 11)
    ]
    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = [
            pool.submit(wire_solve, *address, request)
            for request in fresh
            for address in workers
            for _ in range(2)
        ]
        outcomes = [f.result(60.0) for f in futures]
    assert all(status == 200 for status, _, _ in outcomes)
    by_key: dict[str, set[str]] = {}
    for (status, _, envelope), request in zip(
        outcomes, [r for r in fresh for _ in range(4)]
    ):
        by_key.setdefault(request.cache_key, set()).add(
            solution_bytes(envelope["result"])
        )
    assert all(len(values) == 1 for values in by_key.values())
    leftovers = [
        name for name in os.listdir(cache_dir) if ".tmp" in name
    ]
    assert leftovers == [], f"temp droppings in shared cache: {leftovers}"
    assert any(cache_dir.iterdir()), "shared disk cache stayed empty"


def test_metrics_federation_labels_every_shard(cluster):
    handle, _ = cluster
    page = ServiceClient(*handle.address).metrics()
    assert 'shard="0"' in page
    assert 'shard="1"' in page
    assert "repro_cluster_proxied_total" in page
    # Worker pages merged: the core serving series survived federation.
    assert "repro_service_requests_total" in page


def test_healthz_aggregates_workers(cluster):
    handle, _ = cluster
    health = ServiceClient(*handle.address).health()
    assert health["status"] in ("ok", "degraded")
    assert len(health["workers"]) == 2
    assert all(
        entry["alive"] and entry["status"] == "ok"
        for entry in health["workers"]
    )


def test_client_hedges_to_a_different_shard(cluster, shard_map):
    handle, _ = cluster
    client = ServiceClient(*handle.address)
    ring = HashRing(
        shard_map["workers"], shard_map["hash_replicas"]
    )
    shards = {
        entry["shard"]: (entry["host"], entry["port"])
        for entry in shard_map["shards"]
    }
    for request in REQUESTS:
        owner = ring.shard_for(request.cache_key)
        hedge = client._hedge_address(request.cache_key)
        assert hedge is not None
        assert hedge != shards[owner]
        assert hedge in shards.values()


def test_respawned_worker_inherits_its_shard(tmp_path):
    """Kill a worker; the supervisor respawns the shard slot and the
    ring keeps routing its keys there (virtual nodes are keyed by
    shard index, not by pid or port)."""
    config = ServiceConfig(
        port=0,
        cluster=ClusterConfig(
            workers=2, health_interval=0.1, cache_dir=str(tmp_path)
        ),
    )
    with start_cluster_in_thread(config) as handle:
        client = ServiceClient(*handle.address)
        before = client.cluster_map()
        ring = HashRing(before["workers"], before["hash_replicas"])
        request = REQUESTS[0]
        owner = ring.shard_for(request.cache_key)
        status, shard, envelope = wire_solve(*handle.address, request)
        assert (status, shard) == (200, owner)
        expected = solution_bytes(envelope["result"])

        victim = next(
            entry for entry in before["shards"]
            if entry["shard"] == owner
        )
        os.kill(victim["pid"], signal.SIGKILL)

        deadline = time.monotonic() + 60.0
        while True:
            chart = client.cluster_map(refresh=True)
            entry = next(
                e for e in chart["shards"] if e["shard"] == owner
            )
            if (
                entry["alive"]
                and entry["pid"] != victim["pid"]
                and entry["port"]
            ):
                break
            assert time.monotonic() < deadline, "respawn timed out"
            time.sleep(0.1)
        assert entry["respawns"] == 1

        status, shard, envelope = wire_solve(*handle.address, request)
        assert (status, shard) == (200, owner)
        assert solution_bytes(envelope["result"]) == expected
