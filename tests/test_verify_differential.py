"""Tests for the cross-solver differential comparator (repro.verify).

The headline acceptance test injects an off-by-one into Algorithm 2's
dhat recursion (the exact class of bug the fuzzer exists to catch) via
a monkeypatched ``solve_mva``, runs a short campaign, and requires a
shrunk JSON reproducer that names the disagreeing solver pair.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.verify.differential import (
    _values_disagree,
    applicable_methods,
    pair_tolerance,
    run_differential,
)
from repro.verify.generators import ModelConfig
from repro.verify.runner import VerifyOptions, run_verify

MIXED = ModelConfig(
    SwitchDimensions(4, 5),
    (
        TrafficClass.poisson(0.2),
        TrafficClass(alpha=0.1, beta=0.3, mu=1.5, a=2),
        TrafficClass.bernoulli(4, 0.05),
    ),
)


class TestApplicableMethods:
    def test_small_config_gets_full_battery(self):
        methods = applicable_methods(MIXED)
        for expected in (
            "convolution",
            "convolution-scaled",
            "convolution-float",
            "mva",
            "series",
            "exact",
            "brute-force",
            "ctmc",
        ):
            assert expected in methods

    def test_large_state_space_drops_enumeration(self):
        # Three classes on a 64x64: ~50k states (> enumeration limit)
        # and capacity 64 (> exact-rational limit).
        big = ModelConfig(
            SwitchDimensions(64, 64),
            (
                TrafficClass.poisson(0.01),
                TrafficClass.poisson(0.02),
                TrafficClass.poisson(0.03),
            ),
        )
        methods = applicable_methods(big)
        assert "brute-force" not in methods
        assert "ctmc" not in methods
        assert "exact" not in methods
        assert "mva" in methods

    def test_huge_bandwidth_drops_only_ctmc(self):
        # a = 12 on a 12x12: two states in total, but the generator's
        # P(12,12)^2 ~ 2e17 rate spread exceeds what sparse LU resolves.
        config = ModelConfig(
            SwitchDimensions(12, 12),
            (TrafficClass(alpha=0.1, beta=0.0, mu=1.0, a=12),),
        )
        methods = applicable_methods(config)
        assert "ctmc" not in methods
        assert "brute-force" in methods


class TestComparison:
    def test_all_solvers_agree_on_mixed_config(self):
        report = run_differential(MIXED)
        assert report.consistent, report.render()
        assert len(report.values) >= 6

    def test_pair_tolerance_is_looser_of_the_two(self):
        assert pair_tolerance("exact", "mva") == pair_tolerance(
            "mva", "exact"
        )
        assert pair_tolerance("exact", "mva") >= pair_tolerance(
            "exact", "convolution"
        )
        assert pair_tolerance("ctmc", "exact") == 1e-6

    def test_values_disagree_semantics(self):
        assert not _values_disagree(1.0, 1.0, 1e-9)
        assert _values_disagree(1.0, 1.1, 1e-9)
        assert _values_disagree(1.0, math.nan, 1e-9)
        # below the absolute floor everything is round-off
        assert not _values_disagree(1e-14, 3e-14, 1e-9)

    def test_complement_scaling_forgives_tiny_blocking_roundoff(self):
        # blocking = 1 - non_blocking: at B ~ 7e-5 an absolute error of
        # 3e-13 is round-off of the complement, not a 4.6e-9 "relative"
        # disagreement (the table1-n64 case).
        x, y = 7.440716332629549e-05, 7.440716298523498e-05
        assert _values_disagree(x, y, 1e-9)
        assert not _values_disagree(x, y, 1e-9, complement=True)
        # ... but a genuine relative error is still caught.
        assert _values_disagree(7e-5, 8e-5, 1e-9, complement=True)

    def test_unsolvable_method_becomes_skip(self):
        # A near-pole pascal mix can overflow the unscaled float mode;
        # whatever happens it must be a skip or a value, never a crash.
        config = ModelConfig(
            SwitchDimensions(8, 8),
            (TrafficClass(alpha=0.05, beta=0.98, mu=1.0, a=1),),
        )
        report = run_differential(config)
        assert report.consistent, report.render()


def _buggy_solve_mva(dims, classes, kernel=None):
    """Algorithm 2 with an off-by-one in the dhat recursion index."""
    from repro.core import measures
    from repro.core.mva import MvaGrids, _k_product

    classes = tuple(classes)
    grids = MvaGrids(dims, classes)
    n1, n2 = dims.n1, dims.n2
    for m1 in range(1, n1 + 1):
        grids.f1[m1, 0] = m1
    for m2 in range(1, n2 + 1):
        grids.f2[0, m2] = m2
    for m2 in range(1, n2 + 1):
        for m1 in range(1, n1 + 1):
            denom1 = 1.0
            denom2 = 1.0
            fits = []
            for r, cls in enumerate(classes):
                if m1 < cls.a or m2 < cls.a:
                    fits.append(False)
                    continue
                fits.append(True)
                if cls.is_poisson:
                    c = 1.0
                else:
                    # BUG UNDER TEST: reads one row above the correct
                    # (m1 - a, m2 - a) predecessor state.
                    c = 1.0 + cls.b * grids.dhat[r][
                        max(0, m1 - cls.a - 1), m2 - cls.a
                    ]
                load = cls.a * cls.rho * c
                denom1 += load * _k_product(grids, r, m1, m2, axis=1)
                denom2 += load * _k_product(grids, r, m1, m2, axis=2)
            grids.f1[m1, m2] = m1 / denom1
            grids.f2[m1, m2] = m2 / denom2
            for r, cls in enumerate(classes):
                if not fits[r]:
                    continue
                h = grids.f1[m1, m2] * _k_product(grids, r, m1, m2, axis=1)
                grids.h[r][m1, m2] = h
                grids.dhat[r][m1, m2] = h * (
                    1.0 + cls.b * grids.dhat[r][m1 - cls.a, m2 - cls.a]
                )
    solution = measures.PerformanceSolution(
        dims=dims,
        classes=classes,
        h=tuple(np.array(g) for g in grids.h),
        log_q=None,
        method="mva",
    )
    solution.grids = grids
    return solution


@pytest.mark.fuzz
def test_injected_mva_bug_yields_shrunk_reproducer(monkeypatch, tmp_path):
    """The acceptance test: a planted dhat off-by-one must come back as
    a minimal JSON reproducer naming an mva-vs-* solver pair."""
    from repro.core import mva

    monkeypatch.setattr(mva, "solve_mva", _buggy_solve_mva)

    options = VerifyOptions(
        seed=3,
        budget_seconds=60.0,
        max_configs=200,
        repro_dir=tmp_path,
        skip_named=True,
        # differential only: the invariant battery also (correctly)
        # fails under the planted bug but is covered elsewhere.
        invariants=(),
        max_failures=1,
    )
    report = run_verify(options)
    assert not report.passed, "planted bug survived the campaign"
    failure = next(f for f in report.failures if f.kind == "differential")
    assert "mva" in failure.label
    # greedy shrinking never grows the config
    assert failure.config.capacity <= failure.shrunk_from.capacity
    assert len(failure.config.classes) <= len(failure.shrunk_from.classes)

    assert failure.repro_path is not None and failure.repro_path.exists()
    record = json.loads(failure.repro_path.read_text())
    assert record["kind"] == "differential"
    assert "mva" in record["label"]

    # The reproducer is self-contained: reloading it re-triggers the
    # same disagreement while the bug is in place.
    replayed = ModelConfig.from_dict(record["config"])
    diff = run_differential(replayed)
    assert any(
        "mva" in (d.method_a, d.method_b) for d in diff.disagreements
    ), diff.render()
