"""Golden-value regression locks for the reproduced figures.

``tests/golden/*.json`` snapshots the figure series produced by the
(cross-validated) solvers.  Any future change that silently alters a
reproduced number — a refactor of the recursions, a parameterization
slip in the scenarios — fails here with a structured drift report
locating the exact curve and point (via
:class:`repro.verify.corpus.GoldenCorpus`).

To intentionally refresh after a *deliberate* scenario change::

    python tools/refresh_golden.py

and review the resulting diff; ``--check`` previews the drift without
rewriting the corpus.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.verify.corpus import GoldenCorpus, figure_record
from repro.workloads import figure1, figure2, figure3, figure4

CORPUS = GoldenCorpus(Path(__file__).parent / "golden")
BUILDERS = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
}


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_figure_matches_golden(name):
    CORPUS.check(name, figure_record(BUILDERS[name]()))


def test_golden_files_exist():
    assert set(BUILDERS) <= set(CORPUS.names())


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_golden_provenance_header(name):
    provenance = CORPUS.provenance(name)
    assert provenance is not None, (
        f"{name}.json lacks a _provenance header; regenerate it with "
        "python tools/refresh_golden.py"
    )
    assert provenance["schema"] >= 1
    assert provenance["generator"]
    assert provenance["library_version"]
