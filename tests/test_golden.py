"""Golden-value regression locks for the reproduced figures.

``tests/golden/*.json`` snapshots the figure series produced by the
(six-way cross-validated) solvers.  Any future change that silently
alters a reproduced number — a refactor of the recursions, a
parameterization slip in the scenarios — fails here with the exact
curve and point.

To intentionally refresh after a *deliberate* scenario change::

    python - <<'PY'
    import json
    from repro.workloads import figure1, figure2, figure3, figure4
    for name, builder in [("figure1", figure1), ("figure2", figure2),
                          ("figure3", figure3), ("figure4", figure4)]:
        fig = builder()
        json.dump({"x": list(fig.x_values),
                   "curves": {c.label: list(c.values) for c in fig.curves}},
                  open(f"tests/golden/{name}.json", "w"), indent=1)
    PY
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.workloads import figure1, figure2, figure3, figure4

GOLDEN_DIR = Path(__file__).parent / "golden"
BUILDERS = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
}


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_figure_matches_golden(name):
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    figure = BUILDERS[name]()
    assert list(figure.x_values) == golden["x"]
    assert {c.label for c in figure.curves} == set(golden["curves"])
    for curve in figure.curves:
        expected = golden["curves"][curve.label]
        for i, (measured, locked) in enumerate(
            zip(curve.values, expected)
        ):
            assert measured == pytest.approx(locked, rel=1e-9), (
                f"{name} curve {curve.label!r} point {i} "
                f"(x={figure.x_values[i]}) drifted: "
                f"{measured} vs locked {locked}"
            )


def test_golden_files_exist():
    for name in BUILDERS:
        assert (GOLDEN_DIR / f"{name}.json").exists()
