"""The resilient solver facade: fallback order, budgets, diagnostics."""

from __future__ import annotations

import math
import time

import pytest

from repro.core.convolution import solve_convolution
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.exceptions import ComputationError, ConvergenceError
from repro.robust.facade import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    STATUS_UNHEALTHY,
    NoHealthySolutionError,
    SolverSpec,
    check_solution_health,
    default_chain,
    solve_robust,
)


@pytest.fixture
def dims() -> SwitchDimensions:
    return SwitchDimensions(4, 4)


@pytest.fixture
def classes() -> list[TrafficClass]:
    return [TrafficClass.poisson(0.1, name="poisson")]


class FakeClock:
    """Monotonic fake advancing a fixed step per reading."""

    def __init__(self, step: float) -> None:
        self.step = step
        self.now = 0.0

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class FakeSolution:
    def __init__(self, blocking=0.5, concurrency=1.0):
        self._b = blocking
        self._e = concurrency

    def blocking(self, r):
        return self._b

    def concurrency(self, r):
        return self._e


def failing(name: str, exc: Exception) -> SolverSpec:
    def solve(dims, classes):
        raise exc

    return SolverSpec(name, solve)


def sleeping(name: str, seconds: float) -> SolverSpec:
    def solve(dims, classes):
        time.sleep(seconds)
        return FakeSolution()

    return SolverSpec(name, solve)


class TestDefaultChain:
    def test_healthy_config_uses_first_solver(self, dims, classes):
        result = solve_robust(dims, classes)
        assert result.method == "mva"
        assert result.diagnostics.chosen == "mva"
        assert result.diagnostics.attempted == ("mva",)
        assert result.solution.blocking(0) == pytest.approx(
            solve_convolution(dims, classes).blocking(0)
        )

    def test_chain_order(self):
        names = [spec.name for spec in default_chain()]
        assert names == [
            "mva", "convolution/log", "convolution/scaled", "series", "exact",
        ]

    def test_exact_guard_skips_large_switches(self, classes):
        big = SwitchDimensions(64, 64)
        guard = default_chain()[-1].guard
        assert guard is not None
        assert "capacity" in guard(big, classes)
        assert guard(SwitchDimensions(4, 4), classes) is None


class TestFallback:
    def test_falls_through_failures_to_healthy_solver(self, dims, classes):
        # The PR's acceptance criterion: earlier solvers forced to fail
        # still yield a healthy solution plus complete diagnostics.
        chain = (
            failing("broken", ComputationError("injected")),
            failing("diverged", ConvergenceError("injected")),
            SolverSpec("real", solve_convolution),
        )
        result = solve_robust(dims, classes, chain=chain)
        assert result.method == "real"
        diag = result.diagnostics
        assert [a.solver for a in diag.attempts] == [
            "broken", "diverged", "real",
        ]
        assert diag.attempt("broken").status == STATUS_ERROR
        assert "ComputationError" in diag.attempt("broken").detail
        assert diag.attempt("diverged").status == STATUS_ERROR
        assert diag.attempt("real").status == STATUS_OK
        assert diag.attempted == ("broken", "diverged", "real")

    def test_unhealthy_solution_is_rejected(self, dims, classes):
        chain = (
            SolverSpec("nan", lambda d, c: FakeSolution(blocking=math.nan)),
            SolverSpec("big", lambda d, c: FakeSolution(blocking=1.5)),
            SolverSpec("negative", lambda d, c: FakeSolution(concurrency=-1.0)),
            SolverSpec("good", lambda d, c: FakeSolution()),
        )
        result = solve_robust(dims, classes, chain=chain)
        assert result.method == "good"
        diag = result.diagnostics
        for name in ("nan", "big", "negative"):
            assert diag.attempt(name).status == STATUS_UNHEALTHY

    def test_guard_records_skip(self, dims, classes):
        chain = (
            SolverSpec("guarded", solve_convolution, lambda d, c: "not today"),
            SolverSpec("good", solve_convolution),
        )
        result = solve_robust(dims, classes, chain=chain)
        diag = result.diagnostics
        assert diag.attempt("guarded").status == STATUS_SKIPPED
        assert diag.attempt("guarded").detail == "not today"
        assert diag.attempted == ("good",)

    def test_solver_budget_times_out_slow_solver(self, dims, classes):
        chain = (
            sleeping("slow", 5.0),
            SolverSpec("fast", solve_convolution),
        )
        result = solve_robust(dims, classes, chain=chain, solver_budget=0.1)
        assert result.method == "fast"
        assert result.diagnostics.attempt("slow").status == STATUS_TIMEOUT

    def test_total_budget_skips_remaining_solvers(self, dims, classes):
        # Each clock reading advances 10s; with a 15s total budget the
        # second solver starts after the budget is spent.
        chain = (
            failing("broken", ComputationError("injected")),
            SolverSpec("never-ran", solve_convolution),
        )
        with pytest.raises(NoHealthySolutionError) as excinfo:
            solve_robust(
                dims, classes, chain=chain,
                total_budget=15.0, clock=FakeClock(10.0),
            )
        diag = excinfo.value.diagnostics
        assert diag.attempt("broken").status == STATUS_ERROR
        assert diag.attempt("never-ran").status == STATUS_SKIPPED
        assert diag.attempt("never-ran").detail == "time budget exhausted"
        assert diag.chosen is None

    def test_all_failures_raise_with_diagnostics(self, dims, classes):
        chain = (
            failing("a", ComputationError("first")),
            failing("b", ComputationError("second")),
        )
        with pytest.raises(NoHealthySolutionError) as excinfo:
            solve_robust(dims, classes, chain=chain)
        diag = excinfo.value.diagnostics
        assert len(diag.attempts) == 2
        assert diag.attempted == ("a", "b")
        assert "no solver produced a healthy solution" in str(excinfo.value)

    def test_empty_chain_rejected(self, dims, classes):
        with pytest.raises(ComputationError):
            solve_robust(dims, classes, chain=())


class TestDiagnostics:
    def test_attempt_lookup_raises_for_unknown(self, dims, classes):
        result = solve_robust(dims, classes)
        with pytest.raises(KeyError):
            result.diagnostics.attempt("nonexistent")

    def test_render_marks_chosen(self, dims, classes):
        chain = (
            failing("broken", ComputationError("injected")),
            SolverSpec("real", solve_convolution),
        )
        text = solve_robust(dims, classes, chain=chain).diagnostics.render()
        assert "* " in text
        assert "chosen: real" in text
        assert "broken" in text


class TestHealthCheck:
    def test_accepts_real_solution(self, dims, classes):
        solution = solve_convolution(dims, classes)
        assert check_solution_health(solution, 1) is None

    @pytest.mark.parametrize(
        "solution,needle",
        [
            (FakeSolution(blocking=math.nan), "not finite"),
            (FakeSolution(blocking=math.inf), "not finite"),
            (FakeSolution(blocking=-0.1), "outside [0, 1]"),
            (FakeSolution(blocking=1.1), "outside [0, 1]"),
            (FakeSolution(concurrency=math.nan), "not finite"),
            (FakeSolution(concurrency=-0.5), "negative"),
        ],
    )
    def test_rejects_unhealthy_values(self, solution, needle):
        reason = check_solution_health(solution, 1)
        assert reason is not None and needle in reason

    def test_reports_measure_evaluation_failure(self):
        class Exploding:
            def blocking(self, r):
                raise ComputationError("boom")

            def concurrency(self, r):
                return 0.0

        reason = check_solution_health(Exploding(), 1)
        assert "measure evaluation failed" in reason


class TestTimeoutThreadHygiene:
    """Regression: a timed-out solver used to run on a non-daemon
    ThreadPoolExecutor worker, which the interpreter joins at shutdown
    — one abandoned long-running solve could stall process exit."""

    def test_abandoned_worker_thread_is_daemonic(self, dims, classes):
        import threading

        from repro.robust.facade import FutureTimeoutError, _run_with_timeout

        release = threading.Event()

        def stuck_solve(d, c):
            release.wait(30.0)
            return FakeSolution()

        spec = SolverSpec("stuck", stuck_solve)
        with pytest.raises(FutureTimeoutError):
            _run_with_timeout(spec, dims, classes, timeout=0.05)
        workers = [
            t for t in threading.enumerate() if t.name == "robust-stuck"
        ]
        assert workers, "the abandoned solver thread should still exist"
        assert all(t.daemon for t in workers)
        release.set()

    def test_fast_solver_result_and_errors_pass_through(
        self, dims, classes
    ):
        from repro.robust.facade import _run_with_timeout

        good = SolverSpec("good", lambda d, c: FakeSolution())
        assert isinstance(
            _run_with_timeout(good, dims, classes, timeout=5.0),
            FakeSolution,
        )
        bad = failing("bad", ComputationError("boom"))
        with pytest.raises(ComputationError):
            _run_with_timeout(bad, dims, classes, timeout=5.0)
