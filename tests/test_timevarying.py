"""Tests for piecewise-stationary (time-varying traffic) analysis."""

from __future__ import annotations

import pytest

from repro.core.convolution import solve_convolution
from repro.core.productform import solve_brute_force
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.ctmc import (
    TrafficSchedule,
    blocking_profile,
    piecewise_transient,
    transient_distribution,
)
from repro.exceptions import ConfigurationError

DIMS = SwitchDimensions(3, 3)
LIGHT = (TrafficClass.poisson(0.05, name="light"),)
HEAVY = (TrafficClass.poisson(0.6, name="heavy"),)


class TestScheduleConstruction:
    def test_total_duration(self):
        schedule = TrafficSchedule.build([(2.0, LIGHT), (3.0, HEAVY)])
        assert schedule.total_duration == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficSchedule.build([])

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficSchedule.build([(0.0, LIGHT)])

    def test_bandwidth_vector_must_match(self):
        wide = (TrafficClass.poisson(0.1, a=2),)
        with pytest.raises(ConfigurationError):
            TrafficSchedule.build([(1.0, LIGHT), (1.0, wide)])

    def test_segment_needs_classes(self):
        with pytest.raises(ConfigurationError):
            TrafficSchedule.build([(1.0, [])])


class TestPiecewiseTransient:
    def test_single_segment_matches_plain_transient(self):
        schedule = TrafficSchedule.build([(2.5, LIGHT)])
        snapshots = piecewise_transient(DIMS, schedule)
        assert len(snapshots) == 1
        t, dist = snapshots[0]
        assert t == pytest.approx(2.5)
        reference = transient_distribution(DIMS, list(LIGHT), t=2.5)
        for state, p in reference.items():
            assert dist[state] == pytest.approx(p, abs=1e-10)

    def test_distributions_normalized(self):
        schedule = TrafficSchedule.build([(1.0, LIGHT), (1.0, HEAVY)])
        for _, dist in piecewise_transient(
            DIMS, schedule, checkpoints_per_segment=3
        ):
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_long_segment_reaches_stationarity(self):
        schedule = TrafficSchedule.build([(200.0, HEAVY)])
        _, dist = piecewise_transient(DIMS, schedule)[-1]
        stationary = solve_brute_force(DIMS, list(HEAVY))
        for state, p in zip(stationary.states, stationary.probabilities):
            assert dist[state] == pytest.approx(p, abs=1e-8)

    def test_checkpoint_count(self):
        schedule = TrafficSchedule.build([(1.0, LIGHT), (2.0, HEAVY)])
        snapshots = piecewise_transient(
            DIMS, schedule, checkpoints_per_segment=4
        )
        assert len(snapshots) == 8
        assert snapshots[-1][0] == pytest.approx(3.0)

    def test_invalid_checkpoints(self):
        schedule = TrafficSchedule.build([(1.0, LIGHT)])
        with pytest.raises(ConfigurationError):
            piecewise_transient(DIMS, schedule, checkpoints_per_segment=0)

    def test_invalid_initial(self):
        schedule = TrafficSchedule.build([(1.0, LIGHT)])
        with pytest.raises(ConfigurationError):
            piecewise_transient(DIMS, schedule, initial=(9,))


class TestBlockingProfile:
    def test_rises_on_heavy_segment_falls_after(self):
        schedule = TrafficSchedule.build(
            [(30.0, LIGHT), (30.0, HEAVY), (30.0, LIGHT)]
        )
        profile = blocking_profile(
            DIMS, schedule, checkpoints_per_segment=6
        )
        light_end = profile[5][1]    # end of first light segment
        heavy_end = profile[11][1]   # end of heavy segment
        recovered = profile[-1][1]   # end of final light segment
        assert heavy_end > 3 * light_end
        assert recovered == pytest.approx(light_end, rel=0.05)

    def test_converges_to_stationary_blocking(self):
        schedule = TrafficSchedule.build([(300.0, HEAVY)])
        profile = blocking_profile(DIMS, schedule)
        stationary = solve_convolution(DIMS, list(HEAVY)).blocking(0)
        assert profile[-1][1] == pytest.approx(stationary, abs=1e-7)

    def test_starts_near_zero_from_empty(self):
        schedule = TrafficSchedule.build([(0.01, HEAVY)])
        profile = blocking_profile(
            DIMS, schedule, checkpoints_per_segment=1
        )
        assert profile[0][1] < 0.05

    def test_bad_class_index(self):
        schedule = TrafficSchedule.build([(1.0, LIGHT)])
        with pytest.raises(ConfigurationError):
            blocking_profile(DIMS, schedule, r=3)
