"""Tests for the verify campaign runner and its CLI subcommand."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.verify.runner import (
    VerifyOptions,
    named_configs,
    parse_budget,
    run_verify,
)


class TestParseBudget:
    @pytest.mark.parametrize(
        "text,seconds",
        [
            ("60s", 60.0),
            ("500ms", 0.5),
            ("2m", 120.0),
            ("0.5h", 1800.0),
            ("45", 45.0),
            (45, 45.0),
            (1.5, 1.5),
        ],
    )
    def test_accepted_forms(self, text, seconds):
        assert parse_budget(text) == seconds

    @pytest.mark.parametrize("bad", ["", "abc", "10 minutes", "-5s", "0"])
    def test_rejected_forms(self, bad):
        with pytest.raises(ConfigurationError):
            parse_budget(bad)


class TestNamedConfigs:
    def test_covers_both_paper_tables(self):
        names = [name for name, _ in named_configs()]
        assert len(names) == len(set(names))
        assert sum(n.startswith("table1-") for n in names) == 10
        assert sum(n.startswith("table2-") for n in names) == 12
        assert "table1-n64-a1" in names
        assert "table2-set3-n16" in names

    def test_table1_configs_are_square_single_class(self):
        for name, config in named_configs():
            if name.startswith("table1-"):
                assert config.dims.n1 == config.dims.n2
                assert len(config.classes) == 1


@pytest.mark.fuzz
class TestRunVerify:
    def test_short_fuzz_campaign_passes(self, tmp_path):
        options = VerifyOptions(
            seed=11,
            budget_seconds=30.0,
            max_configs=40,
            repro_dir=tmp_path,
            skip_named=True,
        )
        report = run_verify(options)
        assert report.passed, report.render()
        assert report.fuzz_checked == 40
        assert report.named_checked == 0
        assert "PASS" in report.render()
        assert not list(tmp_path.iterdir())  # no repros on a clean run

    def test_echo_receives_progress_lines(self, tmp_path):
        lines = []
        options = VerifyOptions(
            seed=1,
            budget_seconds=10.0,
            max_configs=2,
            repro_dir=tmp_path,
            skip_named=True,
        )
        run_verify(options, echo=lines.append)
        assert any("fuzzing" in line for line in lines)


class TestCli:
    def test_list_invariants(self, capsys):
        assert main(["verify", "--list-invariants"]) == 0
        out = capsys.readouterr().out
        assert "blocking-identity" in out
        assert "eq." in out or "§" in out

    @pytest.mark.fuzz
    def test_verify_smoke(self, capsys, tmp_path):
        code = main(
            [
                "verify",
                "--seed",
                "5",
                "--budget",
                "20s",
                "--max-configs",
                "10",
                "--skip-named",
                "--repro-dir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "PASS" in out
        assert "fuzzed configs" in out

    def test_verify_rejects_bad_budget(self, capsys):
        assert main(["verify", "--budget", "soon"]) != 0
        assert "cannot parse budget" in capsys.readouterr().err
