"""Tests for the batched evaluation engine (repro.engine)."""

from __future__ import annotations

import json

import pytest

from repro.api import SolveRequest, solve_many
from repro.core.convolution import solve_convolution
from repro.core.state import SwitchDimensions
from repro.core.traffic import TrafficClass
from repro.engine import (
    BatchSolver,
    CacheCorruptionError,
    DiskCache,
    EngineConfig,
    LRUCache,
    StaleCacheKeyError,
    classes_key,
    get_default_engine,
    key_digest,
    request_key,
    sliced_solution,
)
from repro.engine.cache import DISK_CACHE_VERSION
from repro.exceptions import ComputationError, ConfigurationError
from repro.methods import SolveMethod


@pytest.fixture
def classes():
    return (
        TrafficClass.poisson(0.03, name="data"),
        TrafficClass(alpha=0.01, beta=0.005, name="video"),
    )


def fresh_engine(**overrides) -> BatchSolver:
    return BatchSolver(EngineConfig(**overrides))


class TestKeys:
    def test_classes_key_order_insensitive(self, classes):
        a, b = classes
        assert classes_key((a, b)) == classes_key((b, a))

    def test_classes_key_ignores_names(self):
        assert classes_key(
            (TrafficClass.poisson(0.1, name="x"),)
        ) == classes_key((TrafficClass.poisson(0.1, name="y"),))

    def test_request_key_components(self, classes):
        key = request_key(
            SwitchDimensions(4, 6), classes, SolveMethod.CONVOLUTION
        )
        assert key.startswith("4x6|convolution|")

    def test_digest_is_stable_and_short(self):
        assert key_digest("abc") == key_digest("abc")
        assert len(key_digest("abc")) == 32
        assert key_digest("abc") != key_digest("abd")


class TestLRUCache:
    def test_put_get(self):
        lru = LRUCache(maxsize=4)
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.get("missing") is None

    def test_eviction_is_least_recently_used(self):
        lru = LRUCache(maxsize=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # refresh "a"; "b" becomes the LRU entry
        lru.put("c", 3)
        assert "a" in lru
        assert "b" not in lru
        assert "c" in lru
        assert len(lru) == 2

    def test_clear(self):
        lru = LRUCache(maxsize=4)
        lru.put("a", 1)
        lru.clear()
        assert len(lru) == 0

    def test_rejects_silly_sizes(self):
        with pytest.raises(ComputationError):
            LRUCache(maxsize=0)


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.store("some|key", {"value": 7})
        assert disk.load("some|key") == {"value": 7}
        assert len(disk) == 1

    def test_miss_returns_none(self, tmp_path):
        assert DiskCache(tmp_path).load("absent") is None

    def test_invalid_json_raises_in_strict_mode(self, tmp_path):
        disk = DiskCache(tmp_path, strict=True)
        disk.path_for("k").write_text("{not json")
        with pytest.raises(CacheCorruptionError):
            disk.load("k")

    def test_missing_envelope_raises_in_strict_mode(self, tmp_path):
        disk = DiskCache(tmp_path, strict=True)
        disk.path_for("k").write_text(json.dumps({"oops": 1}))
        with pytest.raises(CacheCorruptionError):
            disk.load("k")

    def test_version_bump_raises_stale_in_strict_mode(self, tmp_path):
        disk = DiskCache(tmp_path, strict=True)
        disk.path_for("k").write_text(
            json.dumps(
                {"version": DISK_CACHE_VERSION + 1, "key": "k", "payload": {}}
            )
        )
        with pytest.raises(StaleCacheKeyError):
            disk.load("k")

    def test_key_mismatch_raises_stale_in_strict_mode(self, tmp_path):
        disk = DiskCache(tmp_path, strict=True)
        disk.store("original", {"value": 1})
        # Simulate a digest collision / copied cache: same file name,
        # different logical key.
        disk.path_for("other").write_text(
            disk.path_for("original").read_text()
        )
        with pytest.raises(StaleCacheKeyError):
            disk.load("other")

    def test_non_strict_quarantines_and_misses(self, tmp_path):
        disk = DiskCache(tmp_path, strict=False)
        path = disk.path_for("k")
        path.write_text("{not json")
        assert disk.load("k") is None
        assert not path.exists(), "bad entry should be quarantined"

    def test_clear(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.store("a", {})
        disk.store("b", {})
        assert disk.clear() == 2
        assert len(disk) == 0


class TestBatchSolverCaching:
    def test_memory_hit_accounting(self, classes):
        engine = fresh_engine()
        request = SolveRequest.square(6, classes)
        first = engine.solve(request)
        assert not first.from_cache
        again = engine.solve(request)
        assert again.from_cache
        assert again == first
        snap = engine.stats.snapshot()
        assert snap["lookups"] == 2
        assert snap["memory_hits"] == 1
        assert snap["solves"] == 1

    def test_disk_hit_survives_memory_clear(self, classes, tmp_path):
        engine = fresh_engine(disk_cache=tmp_path)
        request = SolveRequest.square(6, classes)
        first = engine.solve(request)
        engine.clear()  # drop memory; the disk entry remains
        again = engine.solve(request)
        assert again.from_cache
        assert again == first
        assert engine.stats.disk_hits == 1

    def test_strict_engine_raises_on_undeserializable_payload(
        self, classes, tmp_path
    ):
        engine = fresh_engine(disk_cache=tmp_path, strict_cache=True)
        request = SolveRequest.square(6, classes)
        engine.solve(request)
        engine.clear()
        # Valid envelope, valid JSON — but a payload the result schema
        # cannot deserialize.
        engine.disk.store(request.cache_key, {"schema": "bogus"})
        with pytest.raises(CacheCorruptionError):
            engine.solve(request)

    def test_lenient_engine_resolves_bad_payload(self, classes, tmp_path):
        engine = fresh_engine(disk_cache=tmp_path, strict_cache=False)
        request = SolveRequest.square(6, classes)
        expected = engine.solve(request)
        engine.clear()
        engine.disk.store(request.cache_key, {"schema": "bogus"})
        again = engine.solve(request)  # falls back to a fresh solve
        assert not again.from_cache
        assert again == expected

    def test_cross_order_hit_remaps_measures(self, classes):
        engine = fresh_engine()
        a, b = classes
        forward = engine.solve(SolveRequest.square(8, (a, b)))
        reverse = engine.solve(SolveRequest.square(8, (b, a)))
        assert reverse.from_cache
        assert reverse.blocking == tuple(reversed(forward.blocking))
        assert reverse.concurrency == tuple(reversed(forward.concurrency))
        assert reverse.revenue == forward.revenue

    def test_solution_for_memoizes_object(self, classes):
        engine = fresh_engine()
        request = SolveRequest.square(7, classes)
        first = engine.solution_for(request)
        assert engine.solution_for(request) is first
        assert engine.stats.memory_hits == 1

    def test_solution_for_cross_order_permutes_grids(self, classes):
        engine = fresh_engine()
        a, b = classes
        forward = engine.solution_for(SolveRequest.square(8, (a, b)))
        reverse = engine.solution_for(SolveRequest.square(8, (b, a)))
        assert reverse.blocking(0) == forward.blocking(1)
        assert reverse.blocking(1) == forward.blocking(0)
        assert reverse.concurrency(0) == forward.concurrency(1)


class TestEvaluateMany:
    def test_grid_group_matches_point_solves(self, classes):
        engine = fresh_engine()
        sizes = range(3, 12)
        requests = [SolveRequest.square(n, classes) for n in sizes]
        results = engine.evaluate_many(requests)
        metrics = engine.last_metrics
        assert metrics.grid_groups == 1
        assert metrics.grid_points == len(requests)
        assert metrics.solved == 0
        for n, result in zip(sizes, results):
            direct = solve_convolution(SwitchDimensions.square(n), classes)
            assert result.blocking == tuple(
                direct.blocking(r) for r in range(len(classes))
            )
            assert result.concurrency == tuple(
                direct.concurrency(r) for r in range(len(classes))
            )

    def test_second_pass_is_pure_hits(self, classes):
        engine = fresh_engine()
        requests = [SolveRequest.square(n, classes) for n in range(3, 9)]
        first = engine.evaluate_many(requests)
        second = engine.evaluate_many(requests)
        metrics = engine.last_metrics
        assert metrics.hit_rate == 1.0
        assert metrics.solved == 0
        assert second == first
        assert all(r.from_cache for r in second)

    def test_non_grid_methods_solved_individually(self, classes):
        engine = fresh_engine()
        requests = [
            SolveRequest.square(n, classes, SolveMethod.MVA)
            for n in range(3, 7)
        ]
        engine.evaluate_many(requests, parallel=False)
        metrics = engine.last_metrics
        assert metrics.grid_groups == 0
        assert metrics.solved == len(requests)

    def test_parallel_results_identical_to_serial(self, classes):
        requests = [
            SolveRequest.square(n, classes, SolveMethod.MVA)
            for n in range(3, 9)
        ]
        serial = fresh_engine().evaluate_many(requests, parallel=False)
        parallel_engine = fresh_engine(processes=2)
        parallel = parallel_engine.evaluate_many(requests, parallel=True)
        assert parallel_engine.last_metrics.parallel
        for s, p in zip(serial, parallel):
            assert s.blocking == p.blocking
            assert s.concurrency == p.concurrency
            assert s.revenue == p.revenue

    def test_mixed_methods_and_sizes(self, classes):
        engine = fresh_engine()
        requests = [
            SolveRequest.square(4, classes),
            SolveRequest.square(6, classes),
            SolveRequest.square(4, classes, SolveMethod.MVA),
            SolveRequest.square(4, classes),  # duplicate of the first
        ]
        results = engine.evaluate_many(requests, parallel=False)
        assert results[0].blocking == results[3].blocking
        direct = solve_convolution(SwitchDimensions.square(4), classes)
        assert results[0].blocking == tuple(
            direct.blocking(r) for r in range(len(classes))
        )

    def test_rejects_non_request_items(self, classes):
        with pytest.raises(ConfigurationError):
            fresh_engine().evaluate_many(["nope"])

    def test_solve_many_uses_default_engine(self, classes):
        engine = get_default_engine()
        before = engine.stats.lookups
        solve_many([SolveRequest.square(5, classes)])
        assert engine.stats.lookups > before


class TestSlicedSolution:
    def test_slice_matches_direct_solve(self, classes):
        big = solve_convolution(SwitchDimensions.square(12), classes)
        small_dims = SwitchDimensions(5, 9)
        sliced = sliced_solution(big, small_dims)
        direct = solve_convolution(small_dims, classes)
        for r in range(len(classes)):
            assert sliced.blocking(r) == direct.blocking(r)
            assert sliced.concurrency(r) == direct.concurrency(r)
            assert sliced.call_acceptance(r) == direct.call_acceptance(r)

    def test_cannot_slice_upward(self, classes):
        small = solve_convolution(SwitchDimensions.square(4), classes)
        with pytest.raises(ConfigurationError):
            sliced_solution(small, SwitchDimensions.square(8))
